let protocol_version = 1
let max_payload = 16 * 1024 * 1024

type request =
  | Open of { session : int64; seed : int; start : float array }
  | Step of { session : int64; requests : float array array }
  | Checkpoint of { session : int64 }
  | Close of { session : int64 }

type error_code = Bad_frame | Unknown_session | Duplicate_session | Bad_request

type reply =
  | Opened of { session : int64 }
  | Stepped of {
      session : int64;
      position : float array;
      move : float;
      service : float;
      clamped : bool;
    }
  | Snapshot of {
      session : int64;
      rounds : int;
      clamped_rounds : int;
      position : float array;
      move : float;
      service : float;
    }
  | Closed of {
      session : int64;
      rounds : int;
      clamped_rounds : int;
      position : float array;
      move : float;
      service : float;
    }
  | Error of { session : int64; code : error_code; message : string }

let error_code_to_string = function
  | Bad_frame -> "bad-frame"
  | Unknown_session -> "unknown-session"
  | Duplicate_session -> "duplicate-session"
  | Bad_request -> "bad-request"

(* --- opcodes ---------------------------------------------------------- *)

let op_open = 0x01
let op_step = 0x02
let op_checkpoint = 0x03
let op_close = 0x04
let op_opened = 0x81
let op_stepped = 0x82
let op_snapshot = 0x83
let op_closed = 0x84
let op_error = 0xFF

let error_code_byte = function
  | Bad_frame -> 0x01
  | Unknown_session -> 0x02
  | Duplicate_session -> 0x03
  | Bad_request -> 0x04

let error_code_of_byte = function
  | 0x01 -> Some Bad_frame
  | 0x02 -> Some Unknown_session
  | 0x03 -> Some Duplicate_session
  | 0x04 -> Some Bad_request
  | _ -> None

(* --- encoding --------------------------------------------------------- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf v =
  add_u8 buf (v lsr 24);
  add_u8 buf (v lsr 16);
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_i64 buf v =
  for shift = 7 downto 0 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical v (shift * 8)))
  done

let add_f64 buf x = add_i64 buf (Int64.bits_of_float x)

let add_vec buf v =
  add_u16 buf (Array.length v);
  Array.iter (add_f64 buf) v

let frame payload =
  let n = String.length payload in
  let buf = Buffer.create (n + 4) in
  add_u32 buf n;
  Buffer.add_string buf payload;
  Buffer.contents buf

let payload ~opcode body =
  let buf = Buffer.create (String.length body + 2) in
  add_u8 buf protocol_version;
  add_u8 buf opcode;
  Buffer.add_string buf body;
  Buffer.contents buf

let body_of f =
  let buf = Buffer.create 64 in
  f buf;
  Buffer.contents buf

let encode_request req =
  let opcode, body =
    match req with
    | Open { session; seed; start } ->
      ( op_open,
        body_of (fun b ->
            add_i64 b session;
            add_i64 b (Int64.of_int seed);
            add_vec b start) )
    | Step { session; requests } ->
      ( op_step,
        body_of (fun b ->
            add_i64 b session;
            add_u16 b (Array.length requests);
            Array.iter (add_vec b) requests) )
    | Checkpoint { session } ->
      (op_checkpoint, body_of (fun b -> add_i64 b session))
    | Close { session } -> (op_close, body_of (fun b -> add_i64 b session))
  in
  frame (payload ~opcode body)

let encode_snapshotish b ~session ~rounds ~clamped_rounds ~position ~move
    ~service =
  add_i64 b session;
  add_u32 b rounds;
  add_u32 b clamped_rounds;
  add_vec b position;
  add_f64 b move;
  add_f64 b service

let encode_reply reply =
  let opcode, body =
    match reply with
    | Opened { session } -> (op_opened, body_of (fun b -> add_i64 b session))
    | Stepped { session; position; move; service; clamped } ->
      ( op_stepped,
        body_of (fun b ->
            add_i64 b session;
            add_u8 b (if clamped then 1 else 0);
            add_vec b position;
            add_f64 b move;
            add_f64 b service) )
    | Snapshot { session; rounds; clamped_rounds; position; move; service } ->
      ( op_snapshot,
        body_of
          (encode_snapshotish ~session ~rounds ~clamped_rounds ~position
             ~move ~service) )
    | Closed { session; rounds; clamped_rounds; position; move; service } ->
      ( op_closed,
        body_of
          (encode_snapshotish ~session ~rounds ~clamped_rounds ~position
             ~move ~service) )
    | Error { session; code; message } ->
      ( op_error,
        body_of (fun b ->
            add_i64 b session;
            add_u8 b (error_code_byte code);
            add_u16 b (String.length message);
            Buffer.add_string b message) )
  in
  frame (payload ~opcode body)

(* --- decoding --------------------------------------------------------- *)

(* A tiny cursor over the payload bytes; every read is bounds-checked
   and failures carry the exact defect. *)
type cursor = { data : string; mutable pos : int }

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let need c n what =
  if c.pos + n > String.length c.data then
    malformed "truncated body: %s needs %d byte(s), %d left" what n
      (String.length c.data - c.pos)

let u8 c what =
  need c 1 what;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c what =
  let hi = u8 c what in
  let lo = u8 c what in
  (hi lsl 8) lor lo

let u32 c what =
  let hi = u16 c what in
  let lo = u16 c what in
  (hi lsl 16) lor lo

let i64 c what =
  need c 8 what;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 c what))
  done;
  !v

let f64 c what = Int64.float_of_bits (i64 c what)

let vec ?(reject_non_finite = false) c what =
  let dim = u16 c (what ^ " dimension") in
  if dim = 0 then malformed "%s has dimension 0" what;
  Array.init dim (fun i ->
      let x = f64 c what in
      if reject_non_finite && not (Float.is_finite x) then
        malformed "non-finite coordinate %d in %s" i what;
      x)

let done_ c =
  if c.pos <> String.length c.data then
    malformed "trailing %d byte(s) after frame body"
      (String.length c.data - c.pos)

(* Strip the length prefix of exactly one frame and return its payload. *)
let unframe s =
  let len = String.length s in
  if len < 4 then
    malformed "truncated length prefix: %d byte(s), need 4" len;
  let n =
    (Char.code s.[0] lsl 24)
    lor (Char.code s.[1] lsl 16)
    lor (Char.code s.[2] lsl 8)
    lor Char.code s.[3]
  in
  if n > max_payload then
    malformed "length prefix %d exceeds max payload %d" n max_payload;
  if len < 4 + n then
    malformed "truncated frame: length prefix says %d, %d byte(s) follow" n
      (len - 4);
  if len > 4 + n then
    malformed "trailing %d byte(s) after frame" (len - 4 - n);
  String.sub s 4 n

let header c =
  let version = u8 c "version tag" in
  if version <> protocol_version then
    malformed "bad version tag 0x%02x (expected 0x%02x)" version
      protocol_version;
  u8 c "opcode"

let decode_request s =
  match
    let c = { data = unframe s; pos = 0 } in
    let opcode = header c in
    let req =
      if opcode = op_open then begin
        let session = i64 c "session id" in
        let seed = Int64.to_int (i64 c "seed") in
        let start = vec ~reject_non_finite:true c "start position" in
        Open { session; seed; start }
      end
      else if opcode = op_step then begin
        let session = i64 c "session id" in
        let count = u16 c "request count" in
        let requests =
          Array.init count (fun i ->
              vec ~reject_non_finite:true c
                (Printf.sprintf "request %d" i))
        in
        Step { session; requests }
      end
      else if opcode = op_checkpoint then
        Checkpoint { session = i64 c "session id" }
      else if opcode = op_close then Close { session = i64 c "session id" }
      else malformed "unknown request opcode 0x%02x" opcode
    in
    done_ c;
    req
  with
  | req -> Ok req
  | exception Malformed msg -> Error msg

let decode_reply s =
  match
    let c = { data = unframe s; pos = 0 } in
    let opcode = header c in
    let snapshotish mk =
      let session = i64 c "session id" in
      let rounds = u32 c "round count" in
      let clamped_rounds = u32 c "clamp count" in
      let position = vec c "position" in
      let move = f64 c "movement cost" in
      let service = f64 c "service cost" in
      mk ~session ~rounds ~clamped_rounds ~position ~move ~service
    in
    let reply =
      if opcode = op_opened then Opened { session = i64 c "session id" }
      else if opcode = op_stepped then begin
        let session = i64 c "session id" in
        let flags = u8 c "flags" in
        if flags land lnot 1 <> 0 then
          malformed "unknown flag bits 0x%02x" flags;
        let position = vec c "position" in
        let move = f64 c "movement cost" in
        let service = f64 c "service cost" in
        Stepped { session; position; move; service; clamped = flags land 1 = 1 }
      end
      else if opcode = op_snapshot then
        snapshotish (fun ~session ~rounds ~clamped_rounds ~position ~move
                         ~service ->
            Snapshot { session; rounds; clamped_rounds; position; move; service })
      else if opcode = op_closed then
        snapshotish (fun ~session ~rounds ~clamped_rounds ~position ~move
                         ~service ->
            Closed { session; rounds; clamped_rounds; position; move; service })
      else if opcode = op_error then begin
        let session = i64 c "session id" in
        let code_byte = u8 c "error code" in
        let code =
          match error_code_of_byte code_byte with
          | Some code -> code
          | None -> malformed "unknown error code 0x%02x" code_byte
        in
        let len = u16 c "message length" in
        need c len "message";
        let message = String.sub c.data c.pos len in
        c.pos <- c.pos + len;
        Error { session; code; message }
      end
      else malformed "unknown reply opcode 0x%02x" opcode
    in
    done_ c;
    reply
  with
  | reply -> Ok reply
  | exception Malformed msg -> Error msg

let split stream =
  match
    let len = String.length stream in
    let rec cut pos acc =
      if pos = len then List.rev acc
      else begin
        if pos + 4 > len then
          malformed "truncated length prefix: %d byte(s), need 4" (len - pos);
        let n =
          (Char.code stream.[pos] lsl 24)
          lor (Char.code stream.[pos + 1] lsl 16)
          lor (Char.code stream.[pos + 2] lsl 8)
          lor Char.code stream.[pos + 3]
        in
        if n > max_payload then
          malformed "length prefix %d exceeds max payload %d" n max_payload;
        if pos + 4 + n > len then
          malformed "truncated frame: length prefix says %d, %d byte(s) follow"
            n (len - pos - 4);
        cut (pos + 4 + n) (String.sub stream pos (4 + n) :: acc)
      end
    in
    cut 0 []
  with
  | frames -> Ok frames
  | exception Malformed msg -> Error msg
