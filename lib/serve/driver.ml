module Engine = Mobile_server.Engine
module Instance = Mobile_server.Instance
module Cost = Mobile_server.Cost
module Open_world = Workloads.Open_world

type report = {
  sessions : int;
  steps : int;
  errors : int;
  peak_live : int;
  latencies : float array;
  service_latencies : float array;
  mismatches : string list;
  reply_digest : string;
}

let max_reported = 8

let ok r = r.mismatches = [] && r.errors = 0

let same_bits a b = Int64.bits_of_float a = Int64.bits_of_float b

let same_vec a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (same_bits x b.(i)) then ok := false) a;
      !ok)

(* Canonical position bytes for the trajectory digests: raw big-endian
   IEEE bits per coordinate ({!Frame}'s float convention), so equal
   digests mean bitwise-equal trajectories. *)
let vec_bytes v =
  let b = Bytes.create (8 * Array.length v) in
  Array.iteri
    (fun i x -> Bytes.set_int64_be b (i * 8) (Int64.bits_of_float x))
    v;
  Bytes.unsafe_to_string b

let traj_digest_seed = Digest.string "serve-traj-stream-v1"

type kind = K_open | K_step | K_close

type pending = {
  ticket : Daemon.ticket;
  kind : kind;
  p_id : int64;
  t_submit : float;
}

(* The bookkeeping shared by both driver modes: counters, the two
   latency series (per-step sojourn, per-tick service), the capped
   mismatch log and the chained reply digest. *)
type acc = {
  mutable a_sessions : int;
  mutable a_steps : int;
  mutable a_errors : int;
  mutable a_peak_live : int;
  mutable a_sojourn_rev : float list;
  mutable a_service_rev : float list;
  mutable a_mismatches_rev : string list;
  mutable a_mismatch_count : int;
  (* Chained digest over every reply frame in submission order: cheap,
     incremental, and equal iff the reply byte streams are identical. *)
  mutable a_digest : string;
}

let acc_create () =
  {
    a_sessions = 0;
    a_steps = 0;
    a_errors = 0;
    a_peak_live = 0;
    a_sojourn_rev = [];
    a_service_rev = [];
    a_mismatches_rev = [];
    a_mismatch_count = 0;
    a_digest = Digest.string "serve-reply-stream-v1";
  }

let flag acc fmt =
  Printf.ksprintf
    (fun s ->
      acc.a_mismatch_count <- acc.a_mismatch_count + 1;
      if acc.a_mismatch_count <= max_reported then
        acc.a_mismatches_rev <- s :: acc.a_mismatches_rev)
    fmt

let acc_report acc =
  {
    sessions = acc.a_sessions;
    steps = acc.a_steps;
    errors = acc.a_errors;
    peak_live = acc.a_peak_live;
    latencies = Array.of_list (List.rev acc.a_sojourn_rev);
    service_latencies = Array.of_list (List.rev acc.a_service_rev);
    mismatches = List.rev acc.a_mismatches_rev;
    reply_digest = Digest.to_hex acc.a_digest;
  }

(* Per tick: record the live high-water mark, flush, time the flush.
   The per-tick service latency is flush seconds divided by the step
   frames served in the batch — what the daemon actually spends per
   step — as opposed to the per-step sojourn (submit→reply), which
   under tick batching is dominated by time spent queued behind the
   rest of the tick. *)
let tick_flush daemon acc ~timing ~clock ~tick_steps =
  let live = Daemon.live_sessions daemon in
  if live > acc.a_peak_live then acc.a_peak_live <- live;
  let t0 = clock () in
  Daemon.flush daemon;
  if timing && tick_steps > 0 then begin
    let dt = clock () -. t0 in
    acc.a_service_rev <- (dt /. float_of_int tick_steps) :: acc.a_service_rev
  end

type session_state = {
  plan : Open_world.plan;
  inst : Instance.t;
  mutable traj_rev : Geometry.Vec.t list;
}

let run ?now daemon schedule =
  let states : (int64, session_state) Hashtbl.t = Hashtbl.create 1024 in
  let acc = acc_create () in
  let clock = match now with Some f -> f | None -> fun () -> 0. in
  let timing = now <> None in
  let verify st ~rounds ~clamped_rounds ~position ~move ~service =
    let id = st.plan.Open_world.id in
    let replay =
      Engine.run
        ~rng:(Daemon.session_rng ~seed:st.plan.Open_world.seed)
        (Daemon.config daemon) Mobile_server.Mtc.algorithm st.inst
    in
    let served = Array.of_list (List.rev st.traj_rev) in
    if Array.length served <> Array.length replay.Engine.positions then
      flag acc "session %Ld: served %d rounds, engine replay has %d" id
        (Array.length served)
        (Array.length replay.Engine.positions)
    else
      Array.iteri
        (fun i p ->
          if not (same_vec p replay.Engine.positions.(i)) then
            flag acc "session %Ld: round %d position diverges from engine" id
              i)
        served;
    if rounds <> Array.length replay.Engine.positions then
      flag acc "session %Ld: daemon says %d rounds, engine %d" id rounds
        (Array.length replay.Engine.positions);
    if clamped_rounds <> replay.Engine.clamped then
      flag acc "session %Ld: daemon clamped %d rounds, engine %d" id
        clamped_rounds replay.Engine.clamped;
    if rounds >= 1
       && rounds <= Array.length replay.Engine.positions
       && not (same_vec position replay.Engine.positions.(rounds - 1))
    then flag acc "session %Ld: final position diverges from engine" id;
    if not (same_bits move replay.Engine.cost.Cost.move) then
      flag acc "session %Ld: move cost %h diverges from engine %h" id move
        replay.Engine.cost.Cost.move;
    if not (same_bits service replay.Engine.cost.Cost.service) then
      flag acc "session %Ld: service cost %h diverges from engine %h" id
        service replay.Engine.cost.Cost.service
  in
  let handle (p : pending) =
    let reply_bytes = Daemon.await daemon p.ticket in
    acc.a_digest <- Digest.string (acc.a_digest ^ reply_bytes);
    if timing && p.kind = K_step then
      acc.a_sojourn_rev <- (clock () -. p.t_submit) :: acc.a_sojourn_rev;
    match Frame.decode_reply reply_bytes with
    | Error msg -> flag acc "undecodable reply for session %Ld: %s" p.p_id msg
    | Ok (Frame.Error { session; code; message }) ->
      acc.a_errors <- acc.a_errors + 1;
      flag acc "error reply for session %Ld: %s: %s" session
        (Frame.error_code_to_string code)
        message
    | Ok (Frame.Opened _) -> ()
    | Ok (Frame.Stepped { session; position; _ }) -> begin
        acc.a_steps <- acc.a_steps + 1;
        match Hashtbl.find_opt states session with
        | None -> flag acc "step reply for unknown session %Ld" session
        | Some st -> st.traj_rev <- position :: st.traj_rev
      end
    | Ok (Frame.Snapshot _) -> ()
    | Ok (Frame.Closed { session; rounds; clamped_rounds; position; move;
                         service }) -> begin
        match Hashtbl.find_opt states session with
        | None -> flag acc "close reply for unknown session %Ld" session
        | Some st ->
          verify st ~rounds ~clamped_rounds ~position ~move ~service;
          Hashtbl.remove states session
      end
  in
  let tick_pending = ref [] in
  let tick_steps = ref 0 in
  let submit kind id frame =
    let ticket = Daemon.submit daemon frame in
    if kind = K_step then incr tick_steps;
    tick_pending :=
      { ticket; kind; p_id = id; t_submit = clock () } :: !tick_pending
  in
  Open_world.iter schedule
    ~open_:(fun p inst ->
      acc.a_sessions <- acc.a_sessions + 1;
      Hashtbl.replace states p.Open_world.id
        { plan = p; inst; traj_rev = [] };
      submit K_open p.Open_world.id
        (Frame.encode_request
           (Frame.Open
              {
                session = p.Open_world.id;
                seed = p.Open_world.seed;
                start = inst.Instance.start;
              })))
    ~step:(fun p ~round:_ requests ->
      submit K_step p.Open_world.id
        (Frame.encode_request
           (Frame.Step { session = p.Open_world.id; requests })))
    ~close:(fun p ->
      submit K_close p.Open_world.id
        (Frame.encode_request (Frame.Close { session = p.Open_world.id })))
    ~tick_end:(fun ~tick:_ ->
      tick_flush daemon acc ~timing ~clock ~tick_steps:!tick_steps;
      List.iter handle (List.rev !tick_pending);
      tick_pending := [];
      tick_steps := 0);
  if Hashtbl.length states <> 0 then
    flag acc "%d session(s) never closed" (Hashtbl.length states);
  acc_report acc

(* --- streaming mode --------------------------------------------------- *)

(* Per-session state in streaming mode: the plan plus a chained digest
   of the served positions — O(1) per session where [run] keeps the
   whole trajectory.  At close the session is replayed through
   {!Engine.run_stream} on a fresh {!Open_world.plan_cursor}, chaining
   the replay positions into the same digest construction; equal
   digests mean every per-round position matched bitwise. *)
type stream_state = {
  ss_plan : Open_world.plan;
  mutable ss_rounds : int;
  mutable ss_digest : string;
}

let run_stream ?now daemon (spec : Open_world.spec) =
  let states : (int64, stream_state) Hashtbl.t = Hashtbl.create 1024 in
  let acc = acc_create () in
  let clock = match now with Some f -> f | None -> fun () -> 0. in
  let timing = now <> None in
  let verify (st : stream_state) ~rounds ~clamped_rounds ~position ~move
      ~service =
    let p = st.ss_plan in
    let id = p.Open_world.id in
    let start, next = Open_world.plan_cursor spec p in
    let dig = ref traj_digest_seed in
    let summary =
      Engine.run_stream
        ~rng:(Daemon.session_rng ~seed:p.Open_world.seed)
        ~trace:(fun r ->
          dig := Digest.string (!dig ^ vec_bytes r.Engine.position))
        (Daemon.config daemon) Mobile_server.Mtc.algorithm ~start
        ~rounds:p.Open_world.rounds
        (fun _ -> next ())
    in
    if st.ss_rounds <> summary.Engine.s_rounds then
      flag acc "session %Ld: served %d rounds, engine replay has %d" id
        st.ss_rounds summary.Engine.s_rounds
    else if st.ss_digest <> !dig then
      flag acc "session %Ld: served trajectory diverges from engine" id;
    if rounds <> summary.Engine.s_rounds then
      flag acc "session %Ld: daemon says %d rounds, engine %d" id rounds
        summary.Engine.s_rounds;
    if clamped_rounds <> summary.Engine.s_clamped then
      flag acc "session %Ld: daemon clamped %d rounds, engine %d" id
        clamped_rounds summary.Engine.s_clamped;
    if not (same_vec position summary.Engine.s_final) then
      flag acc "session %Ld: final position diverges from engine" id;
    if not (same_bits move summary.Engine.s_cost.Cost.move) then
      flag acc "session %Ld: move cost %h diverges from engine %h" id move
        summary.Engine.s_cost.Cost.move;
    if not (same_bits service summary.Engine.s_cost.Cost.service) then
      flag acc "session %Ld: service cost %h diverges from engine %h" id
        service summary.Engine.s_cost.Cost.service
  in
  let handle (p : pending) =
    let reply_bytes = Daemon.await daemon p.ticket in
    acc.a_digest <- Digest.string (acc.a_digest ^ reply_bytes);
    if timing && p.kind = K_step then
      acc.a_sojourn_rev <- (clock () -. p.t_submit) :: acc.a_sojourn_rev;
    match Frame.decode_reply reply_bytes with
    | Error msg -> flag acc "undecodable reply for session %Ld: %s" p.p_id msg
    | Ok (Frame.Error { session; code; message }) ->
      acc.a_errors <- acc.a_errors + 1;
      flag acc "error reply for session %Ld: %s: %s" session
        (Frame.error_code_to_string code)
        message
    | Ok (Frame.Opened _) -> ()
    | Ok (Frame.Stepped { session; position; _ }) -> begin
        acc.a_steps <- acc.a_steps + 1;
        match Hashtbl.find_opt states session with
        | None -> flag acc "step reply for unknown session %Ld" session
        | Some st ->
          st.ss_rounds <- st.ss_rounds + 1;
          st.ss_digest <- Digest.string (st.ss_digest ^ vec_bytes position)
      end
    | Ok (Frame.Snapshot _) -> ()
    | Ok (Frame.Closed { session; rounds; clamped_rounds; position; move;
                         service }) -> begin
        match Hashtbl.find_opt states session with
        | None -> flag acc "close reply for unknown session %Ld" session
        | Some st ->
          verify st ~rounds ~clamped_rounds ~position ~move ~service;
          Hashtbl.remove states session
      end
  in
  let tick_pending = ref [] in
  let tick_steps = ref 0 in
  let submit kind id frame =
    let ticket = Daemon.submit daemon frame in
    if kind = K_step then incr tick_steps;
    tick_pending :=
      { ticket; kind; p_id = id; t_submit = clock () } :: !tick_pending
  in
  Open_world.iter_stream spec
    ~open_:(fun p ~start ->
      acc.a_sessions <- acc.a_sessions + 1;
      Hashtbl.replace states p.Open_world.id
        {
          ss_plan = p;
          ss_rounds = 0;
          ss_digest = traj_digest_seed;
        };
      submit K_open p.Open_world.id
        (Frame.encode_request
           (Frame.Open
              { session = p.Open_world.id; seed = p.Open_world.seed; start })))
    ~step:(fun p ~round:_ requests ->
      submit K_step p.Open_world.id
        (Frame.encode_request
           (Frame.Step { session = p.Open_world.id; requests })))
    ~close:(fun p ->
      submit K_close p.Open_world.id
        (Frame.encode_request (Frame.Close { session = p.Open_world.id })))
    ~tick_end:(fun ~tick:_ ->
      tick_flush daemon acc ~timing ~clock ~tick_steps:!tick_steps;
      List.iter handle (List.rev !tick_pending);
      tick_pending := [];
      tick_steps := 0);
  if Hashtbl.length states <> 0 then
    flag acc "%d session(s) never closed" (Hashtbl.length states);
  acc_report acc
