module Engine = Mobile_server.Engine
module Instance = Mobile_server.Instance
module Cost = Mobile_server.Cost
module Open_world = Workloads.Open_world

type report = {
  sessions : int;
  steps : int;
  errors : int;
  peak_live : int;
  latencies : float array;
  mismatches : string list;
  reply_digest : string;
}

let max_reported = 8

let ok r = r.mismatches = [] && r.errors = 0

let same_bits a b = Int64.bits_of_float a = Int64.bits_of_float b

let same_vec a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i x -> if not (same_bits x b.(i)) then ok := false) a;
      !ok)

type session_state = {
  plan : Open_world.plan;
  inst : Instance.t;
  mutable traj_rev : Geometry.Vec.t list;
}

type kind = K_open | K_step | K_close

type pending = {
  ticket : Daemon.ticket;
  kind : kind;
  p_id : int64;
  t_submit : float;
}

let run ?now daemon schedule =
  let states : (int64, session_state) Hashtbl.t = Hashtbl.create 1024 in
  let sessions = ref 0 in
  let steps = ref 0 in
  let errors = ref 0 in
  let peak_live = ref 0 in
  let latencies = ref [] in
  let mismatches = ref [] in
  let mismatch_count = ref 0 in
  (* Chained digest over every reply frame in submission order: cheap,
     incremental, and equal iff the reply byte streams are identical. *)
  let digest = ref (Digest.string "serve-reply-stream-v1") in
  let clock = match now with Some f -> f | None -> fun () -> 0. in
  let timing = now <> None in
  let flag fmt =
    Printf.ksprintf
      (fun s ->
        incr mismatch_count;
        if !mismatch_count <= max_reported then mismatches := s :: !mismatches)
      fmt
  in
  let verify st ~rounds ~clamped_rounds ~position ~move ~service =
    let id = st.plan.Open_world.id in
    let replay =
      Engine.run
        ~rng:(Daemon.session_rng ~seed:st.plan.Open_world.seed)
        (Daemon.config daemon) Mobile_server.Mtc.algorithm st.inst
    in
    let served = Array.of_list (List.rev st.traj_rev) in
    if Array.length served <> Array.length replay.Engine.positions then
      flag "session %Ld: served %d rounds, engine replay has %d" id
        (Array.length served)
        (Array.length replay.Engine.positions)
    else
      Array.iteri
        (fun i p ->
          if not (same_vec p replay.Engine.positions.(i)) then
            flag "session %Ld: round %d position diverges from engine" id i)
        served;
    if rounds <> Array.length replay.Engine.positions then
      flag "session %Ld: daemon says %d rounds, engine %d" id rounds
        (Array.length replay.Engine.positions);
    if clamped_rounds <> replay.Engine.clamped then
      flag "session %Ld: daemon clamped %d rounds, engine %d" id
        clamped_rounds replay.Engine.clamped;
    if rounds >= 1
       && rounds <= Array.length replay.Engine.positions
       && not (same_vec position replay.Engine.positions.(rounds - 1))
    then flag "session %Ld: final position diverges from engine" id;
    if not (same_bits move replay.Engine.cost.Cost.move) then
      flag "session %Ld: move cost %h diverges from engine %h" id move
        replay.Engine.cost.Cost.move;
    if not (same_bits service replay.Engine.cost.Cost.service) then
      flag "session %Ld: service cost %h diverges from engine %h" id service
        replay.Engine.cost.Cost.service
  in
  let handle (p : pending) =
    let reply_bytes = Daemon.await daemon p.ticket in
    digest := Digest.string (!digest ^ reply_bytes);
    if timing && p.kind = K_step then
      latencies := (clock () -. p.t_submit) :: !latencies;
    match Frame.decode_reply reply_bytes with
    | Error msg -> flag "undecodable reply for session %Ld: %s" p.p_id msg
    | Ok (Frame.Error { session; code; message }) ->
      incr errors;
      flag "error reply for session %Ld: %s: %s" session
        (Frame.error_code_to_string code)
        message
    | Ok (Frame.Opened _) -> ()
    | Ok (Frame.Stepped { session; position; _ }) -> begin
        incr steps;
        match Hashtbl.find_opt states session with
        | None -> flag "step reply for unknown session %Ld" session
        | Some st -> st.traj_rev <- position :: st.traj_rev
      end
    | Ok (Frame.Snapshot _) -> ()
    | Ok (Frame.Closed { session; rounds; clamped_rounds; position; move;
                         service }) -> begin
        match Hashtbl.find_opt states session with
        | None -> flag "close reply for unknown session %Ld" session
        | Some st ->
          verify st ~rounds ~clamped_rounds ~position ~move ~service;
          Hashtbl.remove states session
      end
  in
  let tick_pending = ref [] in
  let submit kind id frame =
    let ticket = Daemon.submit daemon frame in
    tick_pending :=
      { ticket; kind; p_id = id; t_submit = clock () } :: !tick_pending
  in
  Open_world.iter schedule
    ~open_:(fun p inst ->
      incr sessions;
      Hashtbl.replace states p.Open_world.id
        { plan = p; inst; traj_rev = [] };
      submit K_open p.Open_world.id
        (Frame.encode_request
           (Frame.Open
              {
                session = p.Open_world.id;
                seed = p.Open_world.seed;
                start = inst.Instance.start;
              })))
    ~step:(fun p ~round:_ requests ->
      submit K_step p.Open_world.id
        (Frame.encode_request
           (Frame.Step { session = p.Open_world.id; requests })))
    ~close:(fun p ->
      submit K_close p.Open_world.id
        (Frame.encode_request (Frame.Close { session = p.Open_world.id })))
    ~tick_end:(fun ~tick:_ ->
      let live = Daemon.live_sessions daemon in
      if live > !peak_live then peak_live := live;
      Daemon.flush daemon;
      List.iter handle (List.rev !tick_pending);
      tick_pending := []);
  if Hashtbl.length states <> 0 then
    flag "%d session(s) never closed" (Hashtbl.length states);
  {
    sessions = !sessions;
    steps = !steps;
    errors = !errors;
    peak_live = !peak_live;
    latencies = Array.of_list (List.rev !latencies);
    mismatches = List.rev !mismatches;
    reply_digest = Digest.to_hex !digest;
  }
