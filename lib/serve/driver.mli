(** Drive an {!Workloads.Open_world} schedule through a {!Daemon} and
    check the serve≡engine identity wall.

    The driver is the single coordinating thread the daemon's API
    expects: per tick it submits the tick's open/step/close frames (all
    through the {!Frame} codec — the driver talks to the daemon only in
    bytes), flushes, then decodes every reply.  For each session it
    accumulates the served trajectory, and when the session closes it
    replays the session's full instance through an in-process
    {!Mobile_server.Engine.run} with the same PRNG
    ({!Daemon.session_rng}) and compares {e bitwise}: every per-round
    position, the cumulative move/service costs, the round and clamp
    counts.  Any divergence is reported; [bench serve] turns it into a
    non-zero exit.

    {!run_stream} is the same wall in O(live sessions) memory: the
    schedule streams from a {!Workloads.Open_world.spec} (no plan
    array), each session keeps only a chained digest of its served
    positions instead of the trajectory, and the close-time replica is
    {!Mobile_server.Engine.run_stream} over the session's workload
    cursor.  This is what serves the million-live-session bench point.

    Clocks are injected ([?now]) because this library must stay
    wall-clock-free (the determinism-clock lint): the bench passes
    [Unix.gettimeofday], tests pass nothing and get no latencies. *)

type report = {
  sessions : int;  (** Sessions opened (and, when [ok], closed). *)
  steps : int;  (** Step replies received. *)
  errors : int;  (** [Error] replies received (0 on a healthy run). *)
  peak_live : int;  (** Daemon-reported live-session high-water mark. *)
  latencies : float array;
      (** Per-step {e sojourn} seconds (submit→reply, submission
          order); empty unless [~now] was given.  Under the driver's
          tick batching a step's sojourn is dominated by queueing
          behind the rest of its tick, so its p99 measures saturation,
          not service speed — see [service_latencies] for the latter.
          Feed to {!Stats.Quantile.quantile}. *)
  service_latencies : float array;
      (** Per-tick {e service} seconds per step: each tick's flush
          wall time divided by the step frames in the batch, one
          sample per tick that served any step; empty unless [~now]
          was given.  This is the daemon's actual per-step processing
          time and the number [bench serve] headlines as step
          latency. *)
  mismatches : string list;
      (** Human-readable identity violations, capped at {!max_reported};
          empty iff serve ≡ engine held bitwise for every session. *)
  reply_digest : string;
      (** Hex digest chained over every reply frame in submission
          order.  Equal digests across daemons ⇒ byte-identical reply
          streams; the jobs=1 ≡ jobs=N and stream ≡ materialized gates
          compare exactly this. *)
}

val max_reported : int
(** Mismatch descriptions kept per run (the count still reflects all). *)

val ok : report -> bool
(** No mismatches, no error replies, every session closed. *)

val run : ?now:(unit -> float) -> Daemon.t -> Workloads.Open_world.t -> report
(** [run daemon schedule] serves the whole schedule and verifies every
    session against [Engine.run] under {!Daemon.config} with the
    daemon's session PRNG.  The daemon is left running (not shut
    down), so a caller can serve several schedules back to back. *)

val run_stream :
  ?now:(unit -> float) -> Daemon.t -> Workloads.Open_world.spec -> report
(** [run_stream daemon spec] serves the schedule [spec] describes via
    {!Workloads.Open_world.iter_stream} — never materializing plans,
    instances or trajectories — and verifies every session at close
    against {!Mobile_server.Engine.run_stream} by comparing chained
    position digests plus the cumulative counters and costs, all
    bitwise.  Submits byte-identical frames in the same order as
    [run (of_spec spec)] on an equal daemon, so the two reports'
    [reply_digest]s are equal — the stream ≡ materialized gate.
    Driver-side memory is O(peak live sessions): a plan, a round
    counter and one digest per live session. *)
