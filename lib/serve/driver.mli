(** Drive an {!Workloads.Open_world} schedule through a {!Daemon} and
    check the serve≡engine identity wall.

    The driver is the single coordinating thread the daemon's API
    expects: per tick it submits the tick's open/step/close frames (all
    through the {!Frame} codec — the driver talks to the daemon only in
    bytes), flushes, then decodes every reply.  For each session it
    accumulates the served trajectory, and when the session closes it
    replays the session's full instance through an in-process
    {!Mobile_server.Engine.run} with the same PRNG
    ({!Daemon.session_rng}) and compares {e bitwise}: every per-round
    position, the cumulative move/service costs, the round and clamp
    counts.  Any divergence is reported; [bench serve] turns it into a
    non-zero exit.

    Clocks are injected ([?now]) because this library must stay
    wall-clock-free (the determinism-clock lint): the bench passes
    [Unix.gettimeofday], tests pass nothing and get no latencies. *)

type report = {
  sessions : int;  (** Sessions opened (and, when [ok], closed). *)
  steps : int;  (** Step replies received. *)
  errors : int;  (** [Error] replies received (0 on a healthy run). *)
  peak_live : int;  (** Daemon-reported live-session high-water mark. *)
  latencies : float array;
      (** Per-step submit→reply seconds, submission order; empty unless
          [~now] was given.  Feed to {!Stats.Quantile.quantile}. *)
  mismatches : string list;
      (** Human-readable identity violations, capped at {!max_reported};
          empty iff serve ≡ engine held bitwise for every session. *)
  reply_digest : string;
      (** Hex digest chained over every reply frame in submission
          order.  Equal digests across daemons ⇒ byte-identical reply
          streams; the jobs=1 ≡ jobs=N gate compares exactly this. *)
}

val max_reported : int
(** Mismatch descriptions kept per run (the count still reflects all). *)

val ok : report -> bool
(** No mismatches, no error replies, every session closed. *)

val run : ?now:(unit -> float) -> Daemon.t -> Workloads.Open_world.t -> report
(** [run daemon schedule] serves the whole schedule and verifies every
    session against [Engine.run] under {!Daemon.config} with the
    daemon's session PRNG.  The daemon is left running (not shut
    down), so a caller can serve several schedules back to back. *)
