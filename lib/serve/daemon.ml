module Engine = Mobile_server.Engine
module Config = Mobile_server.Config
module Vec = Geometry.Vec

(* A session's durable record: enough to rebuild the live state by
   replay after a shard crash.  Only the owning shard ever touches it,
   so no locking is needed. *)
type journal = {
  j_seed : int;
  j_start : Vec.t;
  mutable j_rounds_rev : Vec.t array list;  (** Accepted rounds, newest first. *)
}

type pending = {
  raw : (Frame.request, string) result;
  mutable reply : string option;
}

type shard = {
  queue : pending Queue.t;
  live : (int64, Engine.Session.t) Hashtbl.t;
  journals : (int64, journal) Hashtbl.t;
}

type t = {
  config : Config.t;
  nshards : int;
  shards : shard array;
  pool : Exec.Pool.t option;
  queue_capacity : int;
  journaled : bool;
  mutable stopped : bool;
}

type ticket = pending

let session_rng ~seed = Prng.Stream.named ~name:"serve-session" ~seed

(* SplitMix64 finalizer: a well-mixed, stable hash of the session id,
   so ids produced by any counter spread evenly over the shards. *)
let shard_of ~nshards id =
  let z = Int64.mul (Int64.logxor id (Int64.shift_right_logical id 33))
      0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  Int64.to_int (Int64.unsigned_rem z (Int64.of_int nshards))

let create ?(shards = 8) ?jobs ?(queue_capacity = 1024) ?(journal = true)
    ~config () =
  if shards < 1 then invalid_arg "Serve.Daemon.create: shards < 1";
  if queue_capacity < 1 then
    invalid_arg "Serve.Daemon.create: queue_capacity < 1";
  let jobs =
    match jobs with
    | None -> Stdlib.min shards (Exec.jobs ())
    | Some j ->
      if j < 1 then invalid_arg "Serve.Daemon.create: jobs < 1";
      Stdlib.min shards j
  in
  {
    config;
    nshards = shards;
    shards =
      Array.init shards (fun _ ->
          {
            queue = Queue.create ();
            live = Hashtbl.create 64;
            journals = Hashtbl.create 64;
          });
    pool = (if jobs = 1 then None else Some (Exec.Pool.create ~jobs));
    queue_capacity;
    journaled = journal;
    stopped = false;
  }

let config t = t.config
let shard_count t = t.nshards
let shard_of_session t id = shard_of ~nshards:t.nshards id

(* --- per-shard request processing ------------------------------------ *)

let make_session t ~seed ~start =
  Engine.Session.create ~rng:(session_rng ~seed) t.config
    Mobile_server.Mtc.algorithm ~start

(* Rebuild a journaled session by replaying its accepted rounds: the
   session PRNG restarts from the seed and consumes exactly the same
   draws, so the rebuilt state is bit-identical to the pre-crash one. *)
let recover t shard id (j : journal) =
  let session = make_session t ~seed:j.j_seed ~start:j.j_start in
  List.iter
    (fun round -> ignore (Engine.Session.step session round))
    (List.rev j.j_rounds_rev);
  Hashtbl.replace shard.live id session;
  session

let find_session t shard id =
  match Hashtbl.find_opt shard.live id with
  | Some session -> Some session
  | None ->
    (match Hashtbl.find_opt shard.journals id with
     | Some j -> Some (recover t shard id j)
     | None -> None)

let snapshot_of session ~session_id mk =
  let cost = Engine.Session.cost session in
  mk ~session:session_id
    ~rounds:(Engine.Session.rounds session)
    ~clamped_rounds:(Engine.Session.clamped_count session)
    ~position:(Vec.copy (Engine.Session.position session))
    ~move:cost.Mobile_server.Cost.move
    ~service:cost.Mobile_server.Cost.service

let process t shard (req : (Frame.request, string) result) : Frame.reply =
  match req with
  | Error msg ->
    Frame.Error { session = 0L; code = Frame.Bad_frame; message = msg }
  | Ok (Frame.Open { session; seed; start }) ->
    if Hashtbl.mem shard.journals session || Hashtbl.mem shard.live session
    then
      Frame.Error
        {
          session;
          code = Frame.Duplicate_session;
          message = "session id already open";
        }
    else begin
      let start = Array.copy start in
      if t.journaled then
        Hashtbl.replace shard.journals session
          { j_seed = seed; j_start = start; j_rounds_rev = [] };
      Hashtbl.replace shard.live session (make_session t ~seed ~start);
      Frame.Opened { session }
    end
  | Ok (Frame.Step { session; requests }) ->
    (match find_session t shard session with
     | None ->
       Frame.Error
         {
           session;
           code = Frame.Unknown_session;
           message = "no such session";
         }
     | Some live ->
       (* Session.step validates the whole round before mutating, so a
          rejected round leaves the session live and untouched. *)
       (match Engine.Session.step live requests with
        | record ->
          (match Hashtbl.find_opt shard.journals session with
           | Some j -> j.j_rounds_rev <- requests :: j.j_rounds_rev
           | None -> () (* journaling off *));
          Frame.Stepped
            {
              session;
              position = Vec.copy record.Engine.position;
              move = record.Engine.cost.Mobile_server.Cost.move;
              service = record.Engine.cost.Mobile_server.Cost.service;
              clamped = record.Engine.clamped;
            }
        | exception Invalid_argument msg ->
          Frame.Error { session; code = Frame.Bad_request; message = msg }))
  | Ok (Frame.Checkpoint { session }) ->
    (match find_session t shard session with
     | None ->
       Frame.Error
         {
           session;
           code = Frame.Unknown_session;
           message = "no such session";
         }
     | Some live ->
       snapshot_of live ~session_id:session
         (fun ~session ~rounds ~clamped_rounds ~position ~move ~service ->
           Frame.Snapshot
             { session; rounds; clamped_rounds; position; move; service }))
  | Ok (Frame.Close { session }) ->
    (match find_session t shard session with
     | None ->
       Frame.Error
         {
           session;
           code = Frame.Unknown_session;
           message = "no such session";
         }
     | Some live ->
       let reply =
         snapshot_of live ~session_id:session
           (fun ~session ~rounds ~clamped_rounds ~position ~move ~service ->
             Frame.Closed
               { session; rounds; clamped_rounds; position; move; service })
       in
       Hashtbl.remove shard.live session;
       Hashtbl.remove shard.journals session;
       reply)

let drain t shard =
  while not (Queue.is_empty shard.queue) do
    let pending = Queue.pop shard.queue in
    pending.reply <- Some (Frame.encode_reply (process t shard pending.raw))
  done

let flush t =
  let busy = Array.exists (fun s -> not (Queue.is_empty s.queue)) t.shards in
  if busy then
    match t.pool with
    | Some pool when not t.stopped ->
      Exec.Pool.run pool ~tasks:t.nshards (fun i -> drain t t.shards.(i))
    | _ -> Array.iter (fun shard -> drain t shard) t.shards

(* --- public API ------------------------------------------------------- *)

let submit t frame =
  let raw = Frame.decode_request frame in
  let shard_index =
    match raw with
    | Ok (Frame.Open { session; _ })
    | Ok (Frame.Step { session; _ })
    | Ok (Frame.Checkpoint { session })
    | Ok (Frame.Close { session }) -> shard_of_session t session
    | Error _ -> 0
  in
  let shard = t.shards.(shard_index) in
  if Queue.length shard.queue >= t.queue_capacity then flush t;
  let pending = { raw; reply = None } in
  Queue.add pending shard.queue;
  pending

let await t ticket =
  (match ticket.reply with None -> flush t | Some _ -> ());
  match ticket.reply with
  | Some reply -> reply
  | None -> assert false (* flush drains every shard *)

let call t frame = await t (submit t frame)

let live_sessions t =
  (* With journaling on, the journal table is authoritative: a killed
     shard's sessions are still live (they rebuild on next touch) even
     though the live table was reset.  Without journals the live table
     is all there is. *)
  let count (s : shard) =
    if t.journaled then Hashtbl.length s.journals else Hashtbl.length s.live
  in
  Array.fold_left (fun acc s -> acc + count s) 0 t.shards

let kill_shard ?(lose_journal = false) t i =
  let i = ((i mod t.nshards) + t.nshards) mod t.nshards in
  let shard = t.shards.(i) in
  Hashtbl.reset shard.live;
  if lose_journal then Hashtbl.reset shard.journals

let shutdown t =
  flush t;
  t.stopped <- true;
  match t.pool with None -> () | Some pool -> Exec.Pool.shutdown pool
