(** The sharded session-serving daemon behind [msp serve].

    A daemon owns many concurrent incremental
    {!Mobile_server.Engine.Session}s.  Sessions hash to one of
    [shards] shards by id ({!shard_of_session}); each shard owns its
    sessions {e exclusively}, so stepping needs no locks — parallelism
    comes from draining different shards on different domains of a
    private {!Exec.Pool}.  All client traffic is {!Frame} bytes:
    {!submit} enqueues one encoded request frame and returns a ticket,
    {!await} redeems the ticket for the encoded reply frame.

    {b Batching and backpressure.}  Submitted frames buffer in bounded
    per-shard queues and are processed in bulk by {!flush} (one pool
    task per non-empty shard).  A {!submit} that finds its target
    shard's queue full triggers a flush first — the caller {e blocks};
    frames are never dropped and never reordered.  Within a shard,
    frames are processed strictly in submission order, so a session's
    steps apply in the order the client sent them.

    {b Determinism.}  A session's replies are a pure function of its
    [(seed, start, request rounds)] — the daemon adds no entropy and no
    cross-session coupling, so every trajectory is bit-identical to an
    in-process replay ({!session_rng} builds the replica's PRNG) at any
    shard count and any [jobs] count.  [bench serve] enforces this.

    {b Fault containment.}  A malformed frame earns an [Error] reply
    and nothing else — it cannot kill a shard or perturb any session.
    {!kill_shard} simulates a shard crash: volatile session state is
    lost, but each session's journal (its open parameters plus every
    accepted round) survives unless [lose_journal] is set, and the
    shard transparently rebuilds a journaled session by replay on its
    next frame — the session {e resumes exactly}, bit for bit.  With
    [lose_journal], subsequent frames for the lost sessions get a clean
    [Error Unknown_session] while every other session keeps serving.

    {b Threading contract.}  The public API is driver-threaded: one
    coordinating thread calls [submit]/[await]/[flush]/[kill_shard];
    the daemon parallelizes internally.  This mirrors the rest of the
    repo's {!Exec} usage (see docs/serve.md). *)

type t

type ticket
(** A claim on one submitted frame's reply. *)

val create :
  ?shards:int -> ?jobs:int -> ?queue_capacity:int -> ?journal:bool ->
  config:Mobile_server.Config.t -> unit -> t
(** [create ~config ()] starts a daemon serving MtC sessions under
    [config].  [shards] defaults to 8; [jobs] (worker domains, default
    [Exec.jobs ()]) is capped at [shards] — [jobs = 1] runs shard
    drains inline with no pool at all; [queue_capacity] (default 1024)
    bounds each shard's pending queue.  [journal] (default true)
    controls crash-recovery journaling: with [~journal:false] no
    per-session round history is kept — memory per session is O(1)
    instead of O(steps), which is what lets a daemon hold a million
    live sessions — at the price that {!kill_shard} loses the shard's
    sessions for good (as if [lose_journal] were set).  Replies are
    bit-identical either way; journaling only affects recovery.
    Raises [Invalid_argument] on non-positive parameters. *)

val config : t -> Mobile_server.Config.t
(** The model parameters every served session runs under. *)

val shard_count : t -> int

val shard_of_session : t -> int64 -> int
(** The shard that owns a session id — a pure hash, stable for the
    daemon's lifetime. *)

val session_rng : seed:int -> Prng.Xoshiro.t
(** The PRNG a daemon session draws from, exposed so oracles can build
    bit-exact in-process replicas:
    [Engine.Session.create ~rng:(session_rng ~seed) config Mtc.algorithm]
    mirrors a daemon session opened with [seed]. *)

val submit : t -> string -> ticket
(** Enqueue one encoded request frame.  Blocks (by flushing) if the
    target shard's queue is full.  Malformed frames are accepted here
    and answered with an [Error Bad_frame] reply at flush. *)

val await : t -> ticket -> string
(** The encoded reply frame for a submitted request, flushing first if
    it is still pending.  Tickets are single-use claims but [await] is
    idempotent. *)

val call : t -> string -> string
(** [submit] then [await] — one synchronous round trip. *)

val flush : t -> unit
(** Process every pending frame, one pool task per non-empty shard.
    No-op when nothing is pending. *)

val live_sessions : t -> int
(** Sessions currently materialized across all shards (journaled
    sessions awaiting replay-recovery count too). *)

val kill_shard : ?lose_journal:bool -> t -> int -> unit
(** Crash shard [i] (modulo the shard count): discard its live session
    states.  With [lose_journal] (default false) the journals are
    discarded too and the sessions are gone for good; otherwise they
    will be rebuilt by replay on next touch.  Pending frames survive
    (they are the daemon's, not the shard's). *)

val shutdown : t -> unit
(** Flush pending work, then stop and join the worker domains.
    Idempotent.  The daemon keeps answering after shutdown — frames
    just process in the calling thread. *)
