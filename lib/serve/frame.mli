(** The serve daemon's wire protocol: compact, versioned, length-prefixed
    binary frames.

    A frame is a 4-byte big-endian payload length followed by the
    payload.  The payload starts with a one-byte version tag (currently
    {!protocol_version}) and a one-byte opcode; the rest is the
    opcode-specific body.  Integers travel big-endian at fixed width;
    floats travel as the 8 bytes of their IEEE-754 bit pattern, so a
    decoded reply is {e bit-lossless} — the byte-identity gates in
    [bench serve] and the simtest serve oracle rest on this.

    Decoding is total and precise: every malformed input is rejected
    with an [Error] naming the defect (truncated length prefix, bad
    version tag, unknown opcode, truncated body, non-finite request
    coordinate, trailing bytes), never an exception — a hostile frame
    must not be able to kill a shard.  The committed fixtures under
    [test/golden/frames_v1.hex] pin the exact encoding. *)

val protocol_version : int
(** Version tag carried by every frame; currently [1]. *)

val max_payload : int
(** Upper bound on an accepted payload length; longer prefixes are
    rejected as malformed rather than allocated. *)

(** Client-to-daemon messages. *)
type request =
  | Open of { session : int64; seed : int; start : float array }
      (** Open session [session] with the server at [start]; the
          session's PRNG is derived from [seed] (see
          {!Daemon.session_rng}). *)
  | Step of { session : int64; requests : float array array }
      (** Feed one round of requests; answered by {!Stepped}. *)
  | Checkpoint of { session : int64 }
      (** Ask for the session's cumulative state; answered by
          {!Snapshot}. *)
  | Close of { session : int64 }
      (** Retire the session; answered by {!Closed} (a final
          snapshot). *)

type error_code =
  | Bad_frame  (** The frame itself did not decode. *)
  | Unknown_session  (** No such session (never opened, closed, or lost). *)
  | Duplicate_session  (** [Open] of an id that is already live. *)
  | Bad_request
      (** A structurally valid [Step] the engine rejected (for example a
          dimension mismatch); the session is untouched and still
          live. *)

(** Daemon-to-client messages. *)
type reply =
  | Opened of { session : int64 }
  | Stepped of {
      session : int64;
      position : float array;  (** Server position after the round. *)
      move : float;  (** This round's movement cost. *)
      service : float;  (** This round's service cost. *)
      clamped : bool;  (** Whether the proposal hit the online budget. *)
    }
  | Snapshot of {
      session : int64;
      rounds : int;  (** Rounds played so far. *)
      clamped_rounds : int;
      position : float array;
      move : float;  (** Cumulative movement cost. *)
      service : float;  (** Cumulative service cost. *)
    }
  | Closed of {
      session : int64;
      rounds : int;
      clamped_rounds : int;
      position : float array;
      move : float;
      service : float;
    }
  | Error of { session : int64; code : error_code; message : string }
      (** [session] is [0L] when the offending frame did not name one. *)

val error_code_to_string : error_code -> string
(** Stable lower-case names ("bad-frame", "unknown-session", ...). *)

val encode_request : request -> string
(** One full frame, length prefix included.  Requests with non-finite
    coordinates encode faithfully (the bits travel) but will be rejected
    by {!decode_request} — that is how the malformed-frame tests build
    their fixtures. *)

val encode_reply : reply -> string
(** One full frame, length prefix included. *)

val decode_request : string -> (request, string) result
(** Decode exactly one framed request.  [Error] pinpoints the defect;
    trailing bytes after the frame are a defect too (use {!split} for
    streams). *)

val decode_reply : string -> (reply, string) result
(** Decode exactly one framed reply. *)

val split : string -> (string list, string) result
(** Cut a byte stream into whole frames (each returned with its length
    prefix, ready for [decode_*]).  [Error] on a truncated trailing
    frame or an oversized length prefix. *)
