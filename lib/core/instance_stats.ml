module Vec = Geometry.Vec

type t = {
  rounds : int;
  dim : int;
  total_requests : int;
  r_min : int;
  r_max : int;
  empty_rounds : int;
  mean_drift : float;
  max_drift : float;
  spread : float;
  hull_radius : float;
}

let compute (inst : Instance.t) =
  let rounds = Instance.length inst in
  let r_min, r_max = Instance.request_bounds inst in
  let empty_rounds = ref 0 in
  let drift_sum = ref 0.0 and drift_count = ref 0 and max_drift = ref 0.0 in
  let spread_sum = ref 0.0 and spread_rounds = ref 0 in
  let hull_radius = ref 0.0 in
  let prev_centroid = ref None in
  Array.iter
    (fun round ->
      if Array.length round = 0 then incr empty_rounds
      else begin
        let c = Vec.centroid round in
        (match !prev_centroid with
         | Some p ->
           let d = Vec.dist p c in
           drift_sum := !drift_sum +. d;
           incr drift_count;
           if d > !max_drift then max_drift := d
         | None -> ());
        prev_centroid := Some c;
        let round_spread =
          Array.fold_left (fun acc v -> acc +. Vec.dist c v) 0.0 round
          /. float_of_int (Array.length round)
        in
        spread_sum := !spread_sum +. round_spread;
        incr spread_rounds;
        Array.iter
          (fun v ->
            let d = Vec.dist inst.Instance.start v in
            if d > !hull_radius then hull_radius := d)
          round
      end)
    inst.Instance.steps;
  {
    rounds;
    dim = Instance.dim inst;
    total_requests = Instance.total_requests inst;
    r_min;
    r_max;
    empty_rounds = !empty_rounds;
    mean_drift =
      (if !drift_count = 0 then 0.0
       else !drift_sum /. float_of_int !drift_count);
    max_drift = !max_drift;
    spread =
      (if !spread_rounds = 0 then 0.0
       else !spread_sum /. float_of_int !spread_rounds);
    hull_radius = !hull_radius;
  }

let regime ~move_limit stats =
  if move_limit <= 0.0 then invalid_arg "Instance_stats.regime: move_limit <= 0";
  if stats.total_requests = 0 then "empty instance"
  else if stats.r_min = 1 && stats.r_max = 1 then
    if stats.max_drift <= move_limit +. 1e-9 then
      "moving-client, agent no faster than the server (Theorem 10 regime: \
       O(1) without augmentation)"
    else
      "moving-client, agent faster than the server (Theorem 8 regime: \
       unbounded ratio without augmentation)"
  else if stats.mean_drift > move_limit then
    "request cloud outruns the server (augmentation essential)"
  else if stats.r_max > stats.r_min then
    Printf.sprintf
      "varying request counts (Rmax/Rmin = %d/%d enters the Theorem 4 \
       bound)" stats.r_max stats.r_min
  else "fixed request count, bounded drift (Theorem 4 regime)"

let pp ppf s =
  Format.fprintf ppf
    "@[<v>rounds          %d (empty: %d)@,\
     dimension       %d@,\
     requests        %d (per round: %d..%d)@,\
     drift           mean %.4g, max %.4g@,\
     spread          %.4g@,\
     hull radius     %.4g@]"
    s.rounds s.empty_rounds s.dim s.total_requests s.r_min s.r_max
    s.mean_drift s.max_drift s.spread s.hull_radius
