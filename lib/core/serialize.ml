module Vec = Geometry.Vec

let header_instance = "# mobile-server-instance v1"
let header_trajectory = "# mobile-server-trajectory v1"

let coords v =
  String.concat " "
    (Array.to_list (Array.map (fun c -> Printf.sprintf "%.17g" c) v))

let instance_to_string (inst : Instance.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header_instance;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "dim %d\n" (Instance.dim inst));
  Buffer.add_string buf (Printf.sprintf "rounds %d\n" (Instance.length inst));
  Buffer.add_string buf (Printf.sprintf "start %s\n" (coords inst.Instance.start));
  Array.iteri
    (fun t round ->
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "req %d %s\n" t (coords v)))
        round)
    inst.Instance.steps;
  Buffer.contents buf

let trajectory_to_string ~start positions =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header_trajectory;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "dim %d\n" (Vec.dim start));
  Buffer.add_string buf
    (Printf.sprintf "rounds %d\n" (Array.length positions));
  Buffer.add_string buf (Printf.sprintf "start %s\n" (coords start));
  Array.iteri
    (fun t p -> Buffer.add_string buf (Printf.sprintf "pos %d %s\n" t (coords p)))
    positions;
  Buffer.contents buf

(* --- Parsing -------------------------------------------------------- *)

type parser_state = {
  mutable dim : int option;
  mutable rounds : int option;
  mutable start : Vec.t option;
}

let fail_line n msg = Error (Printf.sprintf "line %d: %s" n msg)

let parse_floats n parts =
  (* float_of_string would accept "nan"/"inf" and let garbage into cost
     accounting; serialized instances must be finite. *)
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | p :: rest -> (
      match float_of_string_opt p with
      | Some f when Float.is_finite f -> go (f :: acc) rest
      | Some _ -> fail_line n "non-finite number"
      | None -> fail_line n "malformed number")
  in
  go [] parts

let parse ~header ~on_point text =
  let lines = String.split_on_char '\n' text in
  let st = { dim = None; rounds = None; start = None } in
  let rec step n lines =
    match lines with
    | [] -> Ok ()
    | line :: rest ->
      let line = String.trim line in
      let continue = function
        | Ok () -> step (n + 1) rest
        | Error _ as e -> e
      in
      if line = "" || (String.length line > 0 && line.[0] = '#' && n > 1)
      then step (n + 1) rest
      else if n = 1 then
        if line = header then step (n + 1) rest
        else fail_line n (Printf.sprintf "expected header %S" header)
      else begin
        match String.split_on_char ' ' line
              |> List.filter (fun s -> s <> "")
        with
        | [ "dim"; d ] ->
          continue
            (match int_of_string_opt d with
             | Some d when d >= 1 ->
               st.dim <- Some d;
               Ok ()
             | Some _ | None -> fail_line n "bad dimension")
        | [ "rounds"; r ] ->
          continue
            (match int_of_string_opt r with
             | Some r when r >= 0 ->
               st.rounds <- Some r;
               Ok ()
             | Some _ | None -> fail_line n "bad round count")
        | "start" :: parts ->
          continue
            (Result.bind (parse_floats n parts) (fun v ->
                 match st.dim with
                 | Some d when Array.length v <> d ->
                   fail_line n "start has wrong dimension"
                 | Some _ | None ->
                   st.start <- Some v;
                   Ok ()))
        | kind :: t :: parts ->
          continue
            (match int_of_string_opt t with
             | None -> fail_line n "bad round index"
             | Some t ->
               Result.bind (parse_floats n parts) (fun v ->
                   match st.dim, st.rounds with
                   | Some d, _ when Array.length v <> d ->
                     fail_line n "point has wrong dimension"
                   | _, Some r when t < 0 || t >= r ->
                     fail_line n "round index out of range"
                   | _ -> on_point ~line:n ~kind ~round:t v))
        | _ -> fail_line n (Printf.sprintf "unrecognized directive %S" line)
      end
  in
  Result.bind (step 1 lines) (fun () ->
      match st.dim, st.rounds, st.start with
      | Some dim, Some rounds, Some start -> Ok (dim, rounds, start)
      | None, _, _ -> Error "missing 'dim' directive"
      | _, None, _ -> Error "missing 'rounds' directive"
      | _, _, None -> Error "missing 'start' directive")

let instance_of_string text =
  let requests : (int * Vec.t) list ref = ref [] in
  let on_point ~line ~kind ~round v =
    if kind = "req" then begin
      requests := (round, v) :: !requests;
      Ok ()
    end
    else fail_line line (Printf.sprintf "unexpected directive %S" kind)
  in
  Result.bind (parse ~header:header_instance ~on_point text)
    (fun (_dim, rounds, start) ->
      (* [!requests] is in reverse file order; prepending while folding
         restores file order per round. *)
      let buckets = Array.make rounds [] in
      List.iter (fun (t, v) -> buckets.(t) <- v :: buckets.(t)) !requests;
      let steps = Array.map Array.of_list buckets in
      try Ok (Instance.make ~start steps)
      with Invalid_argument msg -> Error msg)

let trajectory_of_string text =
  let points : (int * Vec.t) list ref = ref [] in
  (* A trajectory needs exactly one position per round; a duplicate [pos]
     line used to win silently (last one kept), hiding corrupted files. *)
  let seen = Hashtbl.create 16 in
  let on_point ~line ~kind ~round v =
    if kind = "pos" then
      if Hashtbl.mem seen round then
        fail_line line (Printf.sprintf "duplicate position for round %d" round)
      else begin
        Hashtbl.add seen round ();
        points := (round, v) :: !points;
        Ok ()
      end
    else fail_line line (Printf.sprintf "unexpected directive %S" kind)
  in
  Result.bind (parse ~header:header_trajectory ~on_point text)
    (fun (dim, rounds, start) ->
      let positions = Array.make rounds None in
      List.iter (fun (t, v) -> positions.(t) <- Some v) !points;
      let missing = ref None in
      let out =
        Array.mapi
          (fun t p ->
            match p with
            | Some v -> v
            | None ->
              if !missing = None then missing := Some t;
              Vec.zero dim)
          positions
      in
      match !missing with
      | Some t -> Error (Printf.sprintf "round %d has no position" t)
      | None -> Ok (start, out))

let instance_to_file path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (instance_to_string inst))

let instance_of_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        instance_of_string (really_input_string ic len))

let run_to_csv (run : Engine.run) (inst : Instance.t) =
  if Array.length run.Engine.positions <> Instance.length inst then
    invalid_arg "Serialize.run_to_csv: run does not match instance";
  let dim = Instance.dim inst in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "round,requests,move_cost,service_cost";
  for c = 1 to dim do
    Buffer.add_string buf (Printf.sprintf ",x%d" c)
  done;
  Buffer.add_char buf '\n';
  let prev = ref inst.Instance.start in
  Array.iteri
    (fun t p ->
      let round_cost =
        Cost.step run.Engine.config ~from:!prev ~to_:p inst.Instance.steps.(t)
      in
      prev := p;
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.6g,%.6g" t
           (Array.length inst.Instance.steps.(t))
           round_cost.Cost.move round_cost.Cost.service);
      Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf ",%.6g" c)) p;
      Buffer.add_char buf '\n')
    run.Engine.positions;
  Buffer.contents buf
