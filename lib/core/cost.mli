(** Cost accounting for one round and for whole trajectories.

    Implements the paper's objective (Section 2): a round in which the
    server moves from [p] to [p'] while requests [vs] are active costs

    - Move-first:  [D·d(p, p') + Σ_i d(p', v_i)]
    - Serve-first: [Σ_i d(p, v_i) + D·d(p, p')]

    Both the online algorithm and the offline optimum are charged by the
    same functions; only their movement budgets differ. *)

type breakdown = {
  move : float;  (** Total movement cost [D · distance moved]. *)
  service : float;  (** Total request-serving cost. *)
}

val total : breakdown -> float
(** [total b] is [b.move +. b.service]. *)

val zero : breakdown

val add : breakdown -> breakdown -> breakdown

val service_cost : Geometry.Vec.t -> Geometry.Vec.t array -> float
(** [service_cost p vs] is [Σ_i d(p, v_i)]. *)

val step :
  Config.t -> from:Geometry.Vec.t -> to_:Geometry.Vec.t ->
  Geometry.Vec.t array -> breakdown
(** [step config ~from ~to_ vs] is the cost of one round under
    [config.variant]. *)

val trajectory :
  Config.t -> start:Geometry.Vec.t -> Geometry.Vec.t array ->
  Instance.t -> breakdown
(** [trajectory config ~start positions inst] prices a full server
    trajectory against an instance: [positions.(t)] is the server's
    position at the end of round [t], with [start] the position before
    round 0.  [positions] must have length [Instance.length inst] and
    matching dimension.  No movement-limit check is performed here — use
    {!feasible} for that. *)

val trajectory_packed :
  Config.t -> start:Geometry.Vec.t -> Geometry.Vec.t array ->
  Instance.Packed.t -> breakdown
(** [trajectory_packed config ~start positions p] is {!trajectory} on
    the struct-of-arrays view — bit-identical to pricing the boxed
    instance (same per-round breakdowns, same summation order), but the
    service sums iterate the flat request buffer with no per-request
    boxing. *)

val feasible :
  ?tol:float -> limit:float -> start:Geometry.Vec.t ->
  Geometry.Vec.t array -> bool
(** [feasible ~limit ~start positions] checks that every consecutive
    move (including [start] to [positions.(0)]) is at most [limit],
    within relative tolerance [tol] (default 1e-9).  A non-finite step
    distance (NaN or infinite coordinates anywhere in the trajectory)
    is infeasible: garbage positions can never pass as a legal
    trajectory. *)
