module Vec = Geometry.Vec
module Median = Geometry.Median

let center ~server requests =
  if Array.length requests = 0 then Vec.copy server
  else Median.center ~server requests

let target_with ~center_fn (config : Config.t) ~server requests =
  let r = Array.length requests in
  if r = 0 then Vec.copy server
  else begin
    let c = center_fn ~server requests in
    let pull = Float.min 1.0 (float_of_int r /. config.d_factor) in
    let gap = Vec.dist server c in
    Vec.move_towards server c (pull *. gap)
  end

let target config ~server requests =
  target_with ~center_fn:center config ~server requests

let with_center ~name center_fn =
  Algorithm.of_policy ~name (fun config ~server requests ->
      target_with ~center_fn config ~server requests)

let algorithm = with_center ~name:"mtc" center

let mean_variant =
  let mean ~server requests =
    if Array.length requests = 0 then Vec.copy server
    else Median.mean_center ~server requests
  in
  with_center ~name:"mtc-mean" mean
