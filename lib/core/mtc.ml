module Vec = Geometry.Vec
module Median = Geometry.Median

let center ~server requests =
  if Array.length requests = 0 then Vec.copy server
  else Median.center ~server requests

let target_with ~center_fn (config : Config.t) ~server requests =
  let r = Array.length requests in
  if r = 0 then Vec.copy server
  else begin
    let c = center_fn ~server requests in
    let pull = Float.min 1.0 (float_of_int r /. config.d_factor) in
    let gap = Vec.dist server c in
    Vec.move_towards server c (pull *. gap)
  end

let target config ~server requests =
  target_with ~center_fn:center config ~server requests

let with_center ~name center_fn =
  Algorithm.of_policy ~name (fun config ~server requests ->
      target_with ~center_fn config ~server requests)

(* Warm-started stepper: identical to the [of_policy] path except that
   the previous round's center seeds the next round's Weiszfeld
   iteration.  Only selected when [config.warm_start] is set — the
   default path is the exact historical code, so default runs stay
   byte-identical to the seed trajectories. *)
let warm_make (config : Config.t) ~start =
  let pos = ref (Vec.copy start) in
  let limit = Config.online_limit config in
  let prev_center = ref None in
  fun requests ->
    let target =
      let r = Array.length requests in
      if r = 0 then Vec.copy !pos
      else begin
        (* [Median.center] returns a vector it owns, so holding it
           across rounds is safe. *)
        let c = Median.center ?init:!prev_center ~server:!pos requests in
        prev_center := Some c;
        let pull = Float.min 1.0 (float_of_int r /. config.d_factor) in
        let gap = Vec.dist !pos c in
        Vec.move_towards !pos c (pull *. gap)
      end
    in
    let next = Vec.clamp_step ~from:!pos limit target in
    pos := next;
    next

let algorithm =
  let cold = with_center ~name:"mtc" center in
  let make ?rng config ~start =
    if config.Config.warm_start then warm_make config ~start
    else cold.Algorithm.make ?rng config ~start
  in
  { Algorithm.name = "mtc"; make }

let mean_variant =
  let mean ~server requests =
    if Array.length requests = 0 then Vec.copy server
    else Median.mean_center ~server requests
  in
  with_center ~name:"mtc-mean" mean
