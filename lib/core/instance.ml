module Vec = Geometry.Vec

type t = { start : Vec.t; steps : Vec.t array array }

let make ~start steps =
  let d = Vec.dim start in
  Array.iteri
    (fun t round ->
      Array.iter
        (fun v ->
          if Vec.dim v <> d then
            invalid_arg
              (Printf.sprintf
                 "Instance.make: request in round %d has dimension %d, \
                  expected %d" t (Vec.dim v) d))
        round)
    steps;
  {
    start = Vec.copy start;
    steps = Array.map (fun round -> Array.map Vec.copy round) steps;
  }

module Packed = struct
  type t = {
    start : Vec.t;
    points : Geometry.Points.t;  (* all requests, rounds concatenated *)
    offsets : int array;  (* length T+1; round t is points [offsets.(t),
                             offsets.(t+1)) *)
    mutable digest : string option;
        (* memoized MD5 of [serialize] — a packed instance is immutable
           after [pack], so the digest is computed at most once per
           value.  Unsynchronized on purpose: racing domains can only
           store the same immutable string (pointer stores are atomic
           words), so the benign race never yields a wrong digest. *)
  }

  let dim p = Vec.dim p.start

  let length p = Array.length p.offsets - 1

  let total_requests p = p.offsets.(Array.length p.offsets - 1)

  let start p = p.start

  let points p = p.points

  let round_start p t = p.offsets.(t)

  let round_length p t = p.offsets.(t + 1) - p.offsets.(t)

  (* Deterministic byte serialization for content addressing: ints and
     float bit patterns, little-endian, no textual formatting anywhere
     — two packed instances serialize equally iff every coordinate is
     bit-identical. *)
  let serialize p =
    let data = Geometry.Points.raw p.points in
    let n_data = Geometry.Fbuf.length data in
    let buf =
      Buffer.create
        (8 * (3 + Array.length p.offsets + Vec.dim p.start + n_data))
    in
    let add_int n = Buffer.add_int64_le buf (Int64.of_int n) in
    let add_float f = Buffer.add_int64_le buf (Int64.bits_of_float f) in
    add_int (dim p);
    add_int (length p);
    add_int (total_requests p);
    Array.iter add_int p.offsets;
    Array.iter add_float p.start;
    for i = 0 to n_data - 1 do
      add_float (Geometry.Fbuf.get data i)
    done;
    Buffer.contents buf

  (* Content digest for cache keys: MD5 of [serialize], computed once
     per value.  Keying by the digest instead of the bytes lets warm
     cache hits skip re-serializing the instance entirely. *)
  let content_digest p =
    match p.digest with
    | Some d -> d
    | None ->
      let d = Digest.string (serialize p) in
      p.digest <- Some d;
      d
end

let pack inst =
  let d = Vec.dim inst.start in
  let t_len = Array.length inst.steps in
  let offsets = Array.make (t_len + 1) 0 in
  for t = 0 to t_len - 1 do
    offsets.(t + 1) <- offsets.(t) + Array.length inst.steps.(t)
  done;
  let points = Geometry.Points.create ~dim:d offsets.(t_len) in
  Array.iteri
    (fun t round ->
      Array.iteri
        (fun i v -> Geometry.Points.set points (offsets.(t) + i) v)
        round)
    inst.steps;
  { Packed.start = Vec.copy inst.start; points; offsets; digest = None }

let unpack (p : Packed.t) =
  make ~start:p.Packed.start
    (Array.init (Packed.length p) (fun t ->
         let base = Packed.round_start p t in
         Array.init (Packed.round_length p t) (fun i ->
             Geometry.Points.get p.Packed.points (base + i))))

let dim inst = Vec.dim inst.start

let length inst = Array.length inst.steps

let total_requests inst =
  Array.fold_left (fun acc round -> acc + Array.length round) 0 inst.steps

let request_bounds inst =
  if Array.length inst.steps = 0 then (0, 0)
  else
    Array.fold_left
      (fun (lo, hi) round ->
        let r = Array.length round in
        (Stdlib.min lo r, Stdlib.max hi r))
      (max_int, 0) inst.steps

let round_centroid round =
  if Array.length round = 0 then None else Some (Vec.centroid round)

let max_step inst =
  let best = ref 0.0 in
  let prev = ref (Some inst.start) in
  Array.iter
    (fun round ->
      match round_centroid round with
      | None -> ()
      | Some c ->
        (match !prev with
         | Some p -> best := Float.max !best (Vec.dist p c)
         | None -> ());
        prev := Some c)
    inst.steps;
  !best

let single_trajectory inst =
  if Array.for_all (fun round -> Array.length round = 1) inst.steps then
    Some (Array.map (fun round -> round.(0)) inst.steps)
  else None

let is_moving_client ~speed inst =
  match single_trajectory inst with
  | None -> false
  | Some agent ->
    let tol = 1e-9 *. Float.max 1.0 speed in
    let ok = ref true in
    let prev = ref inst.start in
    Array.iter
      (fun a ->
        if Vec.dist !prev a > speed +. tol then ok := false;
        prev := a)
      agent;
    !ok

let append inst round =
  make ~start:inst.start (Array.append inst.steps [| round |])

let concat_rounds a b =
  if dim a <> dim b then invalid_arg "Instance.concat_rounds: dimension mismatch";
  make ~start:a.start (Array.append a.steps b.steps)

let map_requests f inst =
  make ~start:(f inst.start)
    (Array.map (fun round -> Array.map f round) inst.steps)

let pp ppf inst =
  let lo, hi = request_bounds inst in
  Format.fprintf ppf "instance{dim=%d; T=%d; requests=%d; R∈[%d,%d]}"
    (dim inst) (length inst) (total_requests inst) lo hi
