(** Move-to-Center — the paper's algorithm (Section 4).

    Each round, with the server at [P] and requests [v_1 .. v_r]:

    + let [c] be the point minimizing [Σ_i d(c, v_i)] (ties broken
      towards [P]) — the geometric median;
    + move towards [c] by [min {1, r/D} · d(P, c)], clipped at the
      online budget [(1+δ)·m].

    Rounds with no requests leave the server in place.  For a single
    request ([r = 1]) this specializes to the Moving Client rule of
    Theorem 10: move [min(m_s, d(P, A)/D)] towards the agent.

    Theorem 4: with augmentation [(1+δ)m], MtC is
    [O((1/δ)·Rmax/Rmin)]-competitive on the line and
    [O((1/δ^{3/2})·Rmax/Rmin)]-competitive in the Euclidean plane. *)

val algorithm : Algorithm.t
(** The deterministic MtC algorithm exactly as in the paper.  When
    [Config.warm_start] is set, each round's Weiszfeld iteration starts
    from the previous round's center instead of the centroid — a
    convergence-speed lever that never changes the point the iteration
    targets (docs/perf.md states the determinism contract); with the
    flag off (the default) the stepper is the exact historical code. *)

val target : Config.t -> server:Geometry.Vec.t -> Geometry.Vec.t array ->
  Geometry.Vec.t
(** [target config ~server requests] is the {e unclipped} destination of
    the MtC rule for one round (before the [(1+δ)m] clamp): the point at
    distance [min {1, r/D}·d(server, c)] from [server] towards [c].
    Returns [server] for an empty round.  Exposed for tests and for the
    potential-function checker. *)

val center : server:Geometry.Vec.t -> Geometry.Vec.t array -> Geometry.Vec.t
(** The center point [c] used by the rule (re-export of
    {!Geometry.Median.center}); returns [server] for an empty round. *)

val with_center :
  name:string ->
  (server:Geometry.Vec.t -> Geometry.Vec.t array -> Geometry.Vec.t) ->
  Algorithm.t
(** [with_center ~name center] is the MtC rule with a custom center
    function — used by the ablation that replaces the geometric median
    by the centroid (DESIGN.md §5). *)

val mean_variant : Algorithm.t
(** MtC with the centroid instead of the geometric median
    ("mtc-mean"). *)
