(** Model parameters of a Mobile Server Problem run.

    Groups the paper's constants: the page-weight [D >= 1], the
    per-round movement limit [m > 0], the resource-augmentation factor
    [δ >= 0] granted to the online algorithm (it may move [(1+δ)·m] per
    round; the offline optimum always moves at most [m]), and the cost
    {!Variant}. *)

type t = private {
  d_factor : float;  (** The movement cost weight [D]; at least 1. *)
  move_limit : float;  (** The offline per-round movement limit [m]. *)
  delta : float;  (** Augmentation [δ]; the paper studies δ ∈ (0, 1]. *)
  variant : Variant.t;
}

val make :
  ?d_factor:float -> ?move_limit:float -> ?delta:float ->
  ?variant:Variant.t -> unit -> t
(** [make ()] validates and builds a configuration.  Defaults:
    [d_factor = 1.], [move_limit = 1.], [delta = 0.] (no augmentation),
    [variant = Move_first].  Raises [Invalid_argument] if [d_factor < 1],
    [move_limit <= 0], [delta < 0], or any parameter is non-finite. *)

val online_limit : t -> float
(** [online_limit c] is [(1 + delta) · move_limit] — the online
    algorithm's per-round movement budget. *)

val offline_limit : t -> float
(** [offline_limit c] is [move_limit] — the adversary/optimum budget. *)

val with_delta : t -> float -> t
(** [with_delta c delta] is [c] with the augmentation replaced. *)

val with_variant : t -> Variant.t -> t
(** [with_variant c v] is [c] with the cost variant replaced. *)

val pp : Format.formatter -> t -> unit
