(** Model parameters of a Mobile Server Problem run.

    Groups the paper's constants: the page-weight [D >= 1], the
    per-round movement limit [m > 0], the resource-augmentation factor
    [δ >= 0] granted to the online algorithm (it may move [(1+δ)·m] per
    round; the offline optimum always moves at most [m]), and the cost
    {!Variant}. *)

type t = private {
  d_factor : float;  (** The movement cost weight [D]; at least 1. *)
  move_limit : float;  (** The offline per-round movement limit [m]. *)
  delta : float;  (** Augmentation [δ]; the paper studies δ ∈ (0, 1]. *)
  variant : Variant.t;
  warm_start : bool;
  (** Performance flag, default [false]: when set, MtC warm-starts each
      round's Weiszfeld iteration from the previous round's center
      instead of the centroid.  This is an implementation lever, not a
      model parameter — it changes how fast the median converges, never
      which point it converges to (up to the iteration's step
      tolerance).  Default runs are byte-identical to the historical
      (cold-start) trajectories; see [docs/perf.md] for the exact
      determinism contract. *)
}

val make :
  ?d_factor:float -> ?move_limit:float -> ?delta:float ->
  ?variant:Variant.t -> ?warm_start:bool -> unit -> t
(** [make ()] validates and builds a configuration.  Defaults:
    [d_factor = 1.], [move_limit = 1.], [delta = 0.] (no augmentation),
    [variant = Move_first], [warm_start = false].  Raises
    [Invalid_argument] if [d_factor < 1], [move_limit <= 0],
    [delta < 0], or any parameter is non-finite. *)

val online_limit : t -> float
(** [online_limit c] is [(1 + delta) · move_limit] — the online
    algorithm's per-round movement budget. *)

val offline_limit : t -> float
(** [offline_limit c] is [move_limit] — the adversary/optimum budget. *)

val with_delta : t -> float -> t
(** [with_delta c delta] is [c] with the augmentation replaced. *)

val with_variant : t -> Variant.t -> t
(** [with_variant c v] is [c] with the cost variant replaced. *)

val with_warm_start : t -> bool -> t
(** [with_warm_start c flag] is [c] with the Weiszfeld warm-start flag
    replaced. *)

val pp : Format.formatter -> t -> unit
