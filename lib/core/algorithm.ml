module Vec = Geometry.Vec

type stepper = Vec.t array -> Vec.t

type t = {
  name : string;
  make : ?rng:Prng.Xoshiro.t -> Config.t -> start:Vec.t -> stepper;
}

let of_policy ~name f =
  let make ?rng:_ config ~start =
    let pos = ref (Vec.copy start) in
    let limit = Config.online_limit config in
    fun requests ->
      let target = f config ~server:!pos requests in
      let next = Vec.clamp_step ~from:!pos limit target in
      pos := next;
      next
  in
  { name; make }

let rename name alg = { alg with name }

let stay_put =
  of_policy ~name:"stay-put" (fun _config ~server _requests -> server)
