module Vec = Geometry.Vec

type breakdown = { move : float; service : float }

let total b = b.move +. b.service

let zero = { move = 0.0; service = 0.0 }

let add a b = { move = a.move +. b.move; service = a.service +. b.service }

let service_cost p vs =
  Array.fold_left (fun acc v -> acc +. Vec.dist p v) 0.0 vs

let step (config : Config.t) ~from ~to_ vs =
  let move = config.d_factor *. Vec.dist from to_ in
  let service =
    match config.variant with
    | Variant.Move_first -> service_cost to_ vs
    | Variant.Serve_first -> service_cost from vs
  in
  { move; service }

let trajectory config ~start positions inst =
  let t_len = Instance.length inst in
  if Array.length positions <> t_len then
    invalid_arg
      (Printf.sprintf "Cost.trajectory: %d positions for %d rounds"
         (Array.length positions) t_len);
  let acc = ref zero in
  let prev = ref start in
  for t = 0 to t_len - 1 do
    acc := add !acc (step config ~from:!prev ~to_:positions.(t) inst.steps.(t));
    prev := positions.(t)
  done;
  !acc

(* Same accumulation as [trajectory] — one [step]-shaped breakdown per
   round, added in round order — with the service sums taken over the
   flat request buffer ([Points.sum_dist] is bit-identical to
   [service_cost] on the boxed slice). *)
let trajectory_packed config ~start positions (p : Instance.Packed.t) =
  let t_len = Instance.Packed.length p in
  if Array.length positions <> t_len then
    invalid_arg
      (Printf.sprintf "Cost.trajectory_packed: %d positions for %d rounds"
         (Array.length positions) t_len);
  let points = Instance.Packed.points p in
  let acc = ref zero in
  let prev = ref start in
  for t = 0 to t_len - 1 do
    let lo = Instance.Packed.round_start p t in
    let hi = Instance.Packed.round_start p (t + 1) in
    let move = config.Config.d_factor *. Vec.dist !prev positions.(t) in
    let service =
      match config.Config.variant with
      | Variant.Move_first ->
        Geometry.Points.sum_dist points ~lo ~hi positions.(t)
      | Variant.Serve_first -> Geometry.Points.sum_dist points ~lo ~hi !prev
    in
    acc := add !acc { move; service };
    prev := positions.(t)
  done;
  !acc

let feasible ?(tol = 1e-9) ~limit ~start positions =
  let slack = limit +. (tol *. Float.max 1.0 limit) in
  let n = Array.length positions in
  let ok = ref true in
  let prev = ref start in
  let i = ref 0 in
  (* Stop at the first violation: long infeasible trajectories used to
     be scanned to the end for a verdict already decided. *)
  while !ok && !i < n do
    let p = positions.(!i) in
    (* A NaN distance compares false against any slack, so an explicit
       finiteness test is required to reject garbage trajectories. *)
    let d = Vec.dist !prev p in
    if (not (Float.is_finite d)) || d > slack then ok := false;
    prev := p;
    incr i
  done;
  !ok
