(** Problem instances: a start position plus the request sequence.

    An instance is the input an online algorithm consumes round by
    round: at step [t] (0-based) the positions [steps.(t)] light up,
    the server reacts, costs accrue per the {!Variant}.  The instance
    does not carry the model constants — those live in {!Config} — so
    one request sequence can be replayed under many parameter
    settings. *)

type t = private {
  start : Geometry.Vec.t;  (** [P_0], also the initial optimum position. *)
  steps : Geometry.Vec.t array array;
      (** [steps.(t)] are the request positions of round [t+1]; rounds
          may be empty (no requests). *)
}

val make : start:Geometry.Vec.t -> Geometry.Vec.t array array -> t
(** [make ~start steps] validates that every request has the dimension
    of [start] and builds the instance.  The arrays are copied, so later
    mutation of the caller's arrays cannot corrupt the instance. *)

(** Struct-of-arrays view of an instance: every request coordinate in
    one flat {!Geometry.Points} buffer plus a per-round offset table.
    The hot consumers (offline solvers, [Engine.run_packed], the
    experiment sweeps) iterate this representation; {!pack}/{!unpack}
    are lossless, so the two views are interchangeable bit for bit. *)
module Packed : sig
  type t

  val dim : t -> int
  (** Space dimension. *)

  val length : t -> int
  (** Number of rounds [T]. *)

  val total_requests : t -> int
  (** Requests over all rounds = [round_start t (length t)]. *)

  val start : t -> Geometry.Vec.t
  [@@borrow]
  (** The start position — a borrow of the internal vector; treat as
      read-only. *)

  val points : t -> Geometry.Points.t
  [@@borrow]
  (** All requests, rounds concatenated in order — a borrow; treat as
      read-only. *)

  val round_start : t -> int -> int
  (** [round_start p t] is the index in {!points} of round [t]'s first
      request; valid for [t] in [0, length p] (the last value is the
      total request count, so [round_start p t, round_start p (t+1))]
      is always round [t]'s slice). *)

  val round_length : t -> int -> int
  (** Number of requests in round [t]. *)

  val serialize : t -> string
  (** Deterministic byte serialization (dimensions, offsets, and IEEE
      bit patterns, little-endian): two packed instances serialize
      equally iff they are bit-identical.  Content-addressing key
      material for {!Offline.Opt_cache}-style memoisation. *)

  val content_digest : t -> string
  (** MD5 of {!serialize}, memoized on the (immutable) value — repeat
      cache lookups on the same instance pay serialization once, not
      per lookup.  Equal digests ⇔ equal serializations (modulo MD5). *)
end

val pack : t -> Packed.t
(** [pack inst] is the struct-of-arrays view of [inst] — a lossless
    copy, never a borrow. *)

val unpack : Packed.t -> t
(** [unpack p] rebuilds the boxed view; [unpack (pack inst)] equals
    [inst] coordinate-for-coordinate (bit-identical floats). *)

val dim : t -> int
(** Space dimension. *)

val length : t -> int
(** Number of rounds [T]. *)

val total_requests : t -> int
(** Sum of requests over all rounds. *)

val request_bounds : t -> int * int
(** [(Rmin, Rmax)] over rounds — the quantities in Theorems 2 and 4.
    [(0, 0)] for an empty instance. *)

val max_step : t -> float
(** Largest distance between consecutive request centroids; a cheap
    summary used by workload diagnostics (not a model quantity). *)

val single_trajectory : t -> Geometry.Vec.t array option
(** If every round has exactly one request (the Moving Client shape),
    the agent positions [A_1 .. A_T]; otherwise [None]. *)

val is_moving_client : speed:float -> t -> bool
(** [is_moving_client ~speed inst] checks the Moving Client model's
    input constraint: one request per round, each within [speed] of the
    previous one ([A_0 = start]), up to a 1e-9 relative tolerance. *)

val append : t -> Geometry.Vec.t array -> t
(** [append inst round] extends the sequence by one round. *)

val concat_rounds : t -> t -> t
(** [concat_rounds a b] replays [a]'s rounds then [b]'s rounds,
    starting from [a.start].  [b.start] is ignored; dimensions must
    match. *)

val map_requests : (Geometry.Vec.t -> Geometry.Vec.t) -> t -> t
(** [map_requests f inst] applies a pointwise transform (for example an
    isometry) to every request and the start. *)

val pp : Format.formatter -> t -> unit
(** Prints a compact summary (dimension, rounds, request counts). *)
