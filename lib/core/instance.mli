(** Problem instances: a start position plus the request sequence.

    An instance is the input an online algorithm consumes round by
    round: at step [t] (0-based) the positions [steps.(t)] light up,
    the server reacts, costs accrue per the {!Variant}.  The instance
    does not carry the model constants — those live in {!Config} — so
    one request sequence can be replayed under many parameter
    settings. *)

type t = private {
  start : Geometry.Vec.t;  (** [P_0], also the initial optimum position. *)
  steps : Geometry.Vec.t array array;
      (** [steps.(t)] are the request positions of round [t+1]; rounds
          may be empty (no requests). *)
}

val make : start:Geometry.Vec.t -> Geometry.Vec.t array array -> t
(** [make ~start steps] validates that every request has the dimension
    of [start] and builds the instance.  The arrays are copied, so later
    mutation of the caller's arrays cannot corrupt the instance. *)

val dim : t -> int
(** Space dimension. *)

val length : t -> int
(** Number of rounds [T]. *)

val total_requests : t -> int
(** Sum of requests over all rounds. *)

val request_bounds : t -> int * int
(** [(Rmin, Rmax)] over rounds — the quantities in Theorems 2 and 4.
    [(0, 0)] for an empty instance. *)

val max_step : t -> float
(** Largest distance between consecutive request centroids; a cheap
    summary used by workload diagnostics (not a model quantity). *)

val single_trajectory : t -> Geometry.Vec.t array option
(** If every round has exactly one request (the Moving Client shape),
    the agent positions [A_1 .. A_T]; otherwise [None]. *)

val is_moving_client : speed:float -> t -> bool
(** [is_moving_client ~speed inst] checks the Moving Client model's
    input constraint: one request per round, each within [speed] of the
    previous one ([A_0 = start]), up to a 1e-9 relative tolerance. *)

val append : t -> Geometry.Vec.t array -> t
(** [append inst round] extends the sequence by one round. *)

val concat_rounds : t -> t -> t
(** [concat_rounds a b] replays [a]'s rounds then [b]'s rounds,
    starting from [a.start].  [b.start] is ignored; dimensions must
    match. *)

val map_requests : (Geometry.Vec.t -> Geometry.Vec.t) -> t -> t
(** [map_requests f inst] applies a pointwise transform (for example an
    isometry) to every request and the start. *)

val pp : Format.formatter -> t -> unit
(** Prints a compact summary (dimension, rounds, request counts). *)
