(** Plain-text serialization of instances and trajectories.

    A line-oriented format, stable across versions and diff-friendly, so
    instances can be archived, shared, and replayed:

    {v
    # mobile-server-instance v1
    dim 2
    rounds 3
    start 0 0
    req 0 1.5 2
    req 0 -1 0.25
    req 2 4 4
    v}

    [req t x1 .. xd] places one request in round [t] (0-based); rounds
    not mentioned are empty.  Trajectories use the same header with
    [pos t x1 .. xd] lines, exactly one per round: a missing round and a
    duplicate [pos] for the same round are both parse errors.

    Parsing is strict: unknown directives, wrong dimension counts and
    out-of-range round indices are reported with their line number. *)

val instance_to_string : Instance.t -> string
(** Serialize an instance. *)

val instance_of_string : string -> (Instance.t, string) result
(** Parse an instance; [Error msg] pinpoints the offending line. *)

val instance_to_file : string -> Instance.t -> unit
(** [instance_to_file path inst] writes the serialization to [path]. *)

val instance_of_file : string -> (Instance.t, string) result
(** Read and parse; I/O errors are reported as [Error]. *)

val trajectory_to_string : start:Geometry.Vec.t -> Geometry.Vec.t array -> string
(** Serialize a trajectory (for example an {!Engine.run} result or an
    offline optimum). *)

val trajectory_of_string :
  string -> (Geometry.Vec.t * Geometry.Vec.t array, string) result
(** Parse a trajectory back into [(start, positions)]. *)

val run_to_csv : Engine.run -> Instance.t -> string
(** [run_to_csv run inst] is a per-round CSV with columns
    [round, requests, move_cost, service_cost, x1..xd] — convenient for
    plotting a run with external tools.  The run must come from [inst]
    (lengths are checked). *)
