(** The online-algorithm interface.

    An algorithm is a named factory: given the model {!Config}, a start
    position, and (for randomized strategies) a PRNG, it returns a
    {e stepper} — a stateful closure that consumes one round of requests
    and answers with the server's new position.

    In every variant the algorithm sees the round's requests before
    moving (the paper's model; in the Serve-first variant the requests
    are merely {e charged} at the old position).  The {!Engine} clamps
    each answer to the online movement budget [(1+δ)·m], so a buggy
    strategy cannot cheat on feasibility — it just performs worse. *)

type stepper = Geometry.Vec.t array -> Geometry.Vec.t
(** [stepper requests] returns the server position after this round. *)

type t = {
  name : string;
  make :
    ?rng:Prng.Xoshiro.t -> Config.t -> start:Geometry.Vec.t -> stepper;
}

val of_policy :
  name:string ->
  (Config.t -> server:Geometry.Vec.t -> Geometry.Vec.t array ->
   Geometry.Vec.t) ->
  t
(** [of_policy ~name f] lifts a memoryless policy into an algorithm:
    each round, [f config ~server requests] proposes a target, which is
    clamped to the online budget and becomes the new position.  The
    position bookkeeping is handled by the wrapper. *)

val rename : string -> t -> t
(** [rename name alg] is [alg] under another display name. *)

val stay_put : t
(** The trivial algorithm that never moves; a sanity baseline. *)
