type t = Move_first | Serve_first

let equal a b =
  match a, b with
  | Move_first, Move_first | Serve_first, Serve_first -> true
  | Move_first, Serve_first | Serve_first, Move_first -> false

let to_string = function
  | Move_first -> "move-first"
  | Serve_first -> "serve-first"

let of_string s =
  match String.lowercase_ascii s with
  | "move-first" | "standard" -> Some Move_first
  | "serve-first" | "answer-first" -> Some Serve_first
  | _ -> None

let pp ppf v = Format.pp_print_string ppf (to_string v)

let all = [ Move_first; Serve_first ]
