module Vec = Geometry.Vec

let phi (config : Config.t) ~r ~opt ~alg =
  if config.delta <= 0.0 then
    invalid_arg "Potential.phi: requires delta > 0";
  if r < 1 then invalid_arg "Potential.phi: r must be >= 1";
  let rf = float_of_int r in
  let d = config.d_factor and m = config.move_limit and delta = config.delta in
  let p = Vec.dist opt alg in
  let threshold = delta *. d *. m /. (4.0 *. rf) in
  (* The r <= D regime doubles both branches (Section 4.2). *)
  let factor = if rf > d then 1.0 else 2.0 in
  if p > threshold then factor *. 8.0 *. rf /. (delta *. m) *. p *. p
  else factor *. 2.0 *. d *. p

type report = {
  rounds : int;
  min_constant : float;
  zero_opt_rounds : int;
  max_zero_opt_excess : float;
  final_potential : float;
}

let phi_moving_client (config : Config.t) ~opt ~alg =
  Float.pow 2.0 1.5 *. config.d_factor *. Vec.dist opt alg

(* Shared walker for both potentials. *)
let check_with ~phi config (inst : Instance.t) ~alg_positions ~opt_positions =
  let t_len = Instance.length inst in
  if Array.length alg_positions <> t_len || Array.length opt_positions <> t_len
  then invalid_arg "Potential.check: trajectory length mismatch";
  let eps = 1e-12 in
  let min_constant = ref 0.0 in
  let zero_opt_rounds = ref 0 in
  let max_zero_opt_excess = ref neg_infinity in
  let alg_prev = ref inst.start and opt_prev = ref inst.start in
  let phi_prev = ref (phi ~opt:!opt_prev ~alg:!alg_prev) in
  for t = 0 to t_len - 1 do
    let requests = inst.steps.(t) in
    let alg_next = alg_positions.(t) and opt_next = opt_positions.(t) in
    let c_alg = Cost.total (Cost.step config ~from:!alg_prev ~to_:alg_next requests) in
    let c_opt = Cost.total (Cost.step config ~from:!opt_prev ~to_:opt_next requests) in
    let phi_next = phi ~opt:opt_next ~alg:alg_next in
    let lhs = c_alg +. phi_next -. !phi_prev in
    if c_opt > eps then begin
      let k = lhs /. c_opt in
      if k > !min_constant then min_constant := k
    end else begin
      incr zero_opt_rounds;
      if lhs > !max_zero_opt_excess then max_zero_opt_excess := lhs
    end;
    alg_prev := alg_next;
    opt_prev := opt_next;
    phi_prev := phi_next
  done;
  {
    rounds = t_len;
    min_constant = !min_constant;
    zero_opt_rounds = !zero_opt_rounds;
    max_zero_opt_excess =
      (if !zero_opt_rounds = 0 then 0.0 else !max_zero_opt_excess);
    final_potential = !phi_prev;
  }

let check_moving_client config inst ~alg_positions ~opt_positions =
  if Instance.single_trajectory inst = None then
    invalid_arg
      "Potential.check_moving_client: instance is not a moving-client input";
  check_with
    ~phi:(fun ~opt ~alg -> phi_moving_client config ~opt ~alg)
    config inst ~alg_positions ~opt_positions

let check config ~r inst ~alg_positions ~opt_positions =
  check_with
    ~phi:(fun ~opt ~alg -> phi config ~r ~opt ~alg)
    config inst ~alg_positions ~opt_positions
