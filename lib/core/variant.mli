(** The two cost-accounting variants of the Mobile Server Problem.

    In both variants the algorithm sees the current round's requests
    before choosing where to move; the variants differ in {e where the
    requests are charged}:

    - {!Move_first} (the paper's main model, Section 2): the server
      moves from [P_t] to [P_{t+1}], then every request [v] is served at
      cost [d(P_{t+1}, v)].  The Moving Client model (Section 5) uses
      the same accounting with a single request per round.
    - {!Serve_first} (the "Answer-First" variant): requests are served
      from the old position at cost [d(P_t, v)], then the server moves.
      Theorem 3 shows this small change forces a competitive ratio of
      [Ω(r/D)]. *)

type t = Move_first | Serve_first

val equal : t -> t -> bool

val to_string : t -> string
(** ["move-first"] or ["serve-first"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; also accepts the paper's names
    ["standard"] and ["answer-first"]. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** Both variants, for exhaustive sweeps. *)
