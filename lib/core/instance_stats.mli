(** Instance diagnostics — the numbers that predict which regime of the
    paper an input falls into.

    The theory's behaviour is governed by a handful of instance
    quantities: the request-count range [Rmin, Rmax] (Theorems 2 and
    4), the per-round drift of the request cloud relative to the
    movement limit (Theorems 8 vs 10), and the spatial spread (how much
    a fleet could save, X1).  This module computes them so users — and
    the CLI — can sanity-check a workload before trusting a ratio. *)

type t = {
  rounds : int;
  dim : int;
  total_requests : int;
  r_min : int;  (** Smallest per-round request count. *)
  r_max : int;  (** Largest per-round request count. *)
  empty_rounds : int;
  mean_drift : float;
      (** Mean distance between consecutive non-empty rounds' request
          centroids. *)
  max_drift : float;
      (** Largest such distance — the agent speed for a single-request
          instance. *)
  spread : float;
      (** Mean distance of requests from their round centroid (0 for
          single-request rounds). *)
  hull_radius : float;
      (** Radius of the bounding ball of all requests around the
          start. *)
}

val compute : Instance.t -> t
(** [compute inst] walks the instance once. *)

val regime : move_limit:float -> t -> string
(** [regime ~move_limit stats] is a one-line human classification:
    which theorem's regime the instance most resembles — e.g.
    ["moving-client, agent slower than the server (Theorem 10 regime)"]
    or ["drift exceeds the movement limit (Theorem 8 regime)"]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary. *)
