module Vec = Geometry.Vec

type step_record = {
  round : int;
  position : Vec.t;
  proposed : Vec.t;
  clamped : bool;
  cost : Cost.breakdown;
}

type run = {
  algorithm : string;
  config : Config.t;
  positions : Vec.t array;
  cost : Cost.breakdown;
  clamped : int;
}

(* A proposal counts as clamped when it overshoots the online budget
   beyond the same relative tolerance [Cost.feasible] uses — algorithms
   that clamp themselves (e.g. via [Algorithm.of_policy]) land within a
   few ulps of the budget and must not be counted.  A NaN distance
   compares false, so a non-finite proposal is not counted as clamped —
   it is a different violation, which the {!Analysis} auditor reports
   separately. *)
let clamp_tol = 1e-9

let exceeds_limit ~from ~limit proposed =
  Vec.dist from proposed > limit +. (clamp_tol *. Float.max 1.0 limit)

(* [Vec.move_towards] rejects a non-finite gap, so the engine decides
   explicitly what a non-finite proposal does: it poisons the position
   with NaNs (the pre-fix observable behavior), letting the {!Analysis}
   auditor report Non_finite_position / Non_finite_cost instead of the
   run dying mid-trajectory.  A finite proposal from a finite position
   goes through the ordinary clamp. *)
let is_finite_vec v = Array.for_all Float.is_finite v

let next_position ~from ~limit proposed =
  if Vec.dim proposed <> Vec.dim from then
    invalid_arg "Engine: proposal dimension mismatch";
  if is_finite_vec proposed && is_finite_vec from then
    Vec.clamp_step ~from limit proposed
  else Array.make (Vec.dim from) Float.nan

let iter ?rng config (alg : Algorithm.t) (inst : Instance.t) f =
  let stepper = alg.make ?rng config ~start:inst.start in
  let limit = Config.online_limit config in
  let pos = ref inst.start in
  Array.iteri
    (fun round requests ->
      let proposed = stepper requests in
      let clamped = exceeds_limit ~from:!pos ~limit proposed in
      let next = next_position ~from:!pos ~limit proposed in
      let cost = Cost.step config ~from:!pos ~to_:next requests in
      pos := next;
      f { round; position = next; proposed; clamped; cost })
    inst.steps

let run ?rng config alg inst =
  let t_len = Instance.length inst in
  let positions = Array.make t_len inst.start in
  let total = ref Cost.zero in
  let clamped = ref 0 in
  iter ?rng config alg inst (fun { round; position; clamped = c; cost; _ } ->
      positions.(round) <- position;
      if c then incr clamped;
      total := Cost.add !total cost);
  { algorithm = alg.name; config; positions; cost = !total; clamped = !clamped }

let total_cost ?rng config alg inst =
  let total = ref Cost.zero in
  iter ?rng config alg inst (fun { cost; _ } -> total := Cost.add !total cost);
  Cost.total !total

type stream_summary = {
  s_algorithm : string;
  s_rounds : int;
  s_clamped : int;
  s_cost : Cost.breakdown;
  s_final : Vec.t;
}

(* Streaming run: rounds come from a generator instead of an instance
   array, and no trajectory is retained — live state is the stepper,
   the current position and the running totals, independent of
   [rounds].  The per-round sequence (stepper, clamp test, clamp, cost,
   position update, totals) is exactly [iter]'s followed by [run]'s
   fold, so on [fun r -> inst.steps.(r)] the summary is bit-identical
   to [run]'s — the stream≡materialized identity test pins this. *)
let run_stream ?rng ?trace config (alg : Algorithm.t) ~start ~rounds next =
  if rounds < 0 then invalid_arg "Engine.run_stream: rounds < 0";
  let stepper = alg.make ?rng config ~start in
  let limit = Config.online_limit config in
  let pos = ref start in
  let total = ref Cost.zero in
  let clamped = ref 0 in
  for round = 0 to rounds - 1 do
    let requests = next round in
    let proposed = stepper requests in
    let c = exceeds_limit ~from:!pos ~limit proposed in
    let next_pos = next_position ~from:!pos ~limit proposed in
    let cost = Cost.step config ~from:!pos ~to_:next_pos requests in
    pos := next_pos;
    if c then incr clamped;
    total := Cost.add !total cost;
    match trace with
    | None -> ()
    | Some f -> f { round; position = next_pos; proposed; clamped = c; cost }
  done;
  {
    s_algorithm = alg.name;
    s_rounds = rounds;
    s_clamped = !clamped;
    s_cost = !total;
    s_final = Vec.copy !pos;
  }

(* Packed replay: per-round request views are materialized into a
   fixed set of scratch vectors, so no request is boxed per round and
   no per-round array is allocated.  [views.(r)] shares the first [r]
   scratch vectors; both the algorithm stepper and the cost accounting
   see ordinary [Vec.t array] values with exactly the boxed
   coordinates, so the round arithmetic (and hence the run) is
   bit-identical to [iter] on the unpacked instance.  Contract: the
   algorithm must not retain the request array or its vectors across
   rounds — they are overwritten by the next round (every in-tree
   algorithm copies what it keeps). *)
let iter_packed ?rng config (alg : Algorithm.t) (p : Instance.Packed.t) f =
  let start = Instance.Packed.start p in
  let stepper = alg.Algorithm.make ?rng config ~start in
  let limit = Config.online_limit config in
  let t_len = Instance.Packed.length p in
  let d = Instance.Packed.dim p in
  let points = Instance.Packed.points p in
  let max_r = ref 0 in
  for t = 0 to t_len - 1 do
    max_r := Stdlib.max !max_r (Instance.Packed.round_length p t)
  done;
  let scratch = Array.init !max_r (fun _ -> Array.make d 0.0) in
  let views = Array.init (!max_r + 1) (fun r -> Array.sub scratch 0 r) in
  let pos = ref start in
  for round = 0 to t_len - 1 do
    let lo = Instance.Packed.round_start p round in
    let r = Instance.Packed.round_length p round in
    for i = 0 to r - 1 do
      Geometry.Points.get_into points (lo + i) scratch.(i)
    done;
    let requests = views.(r) in
    let proposed = stepper requests in
    let clamped = exceeds_limit ~from:!pos ~limit proposed in
    let next = next_position ~from:!pos ~limit proposed in
    let cost = Cost.step config ~from:!pos ~to_:next requests in
    pos := next;
    f { round; position = next; proposed; clamped; cost }
  done

let run_packed ?rng config alg (p : Instance.Packed.t) =
  let t_len = Instance.Packed.length p in
  let positions = Array.make t_len (Instance.Packed.start p) in
  let total = ref Cost.zero in
  let clamped = ref 0 in
  iter_packed ?rng config alg p
    (fun { round; position; clamped = c; cost; _ } ->
      positions.(round) <- position;
      if c then incr clamped;
      total := Cost.add !total cost);
  {
    algorithm = alg.Algorithm.name;
    config;
    positions;
    cost = !total;
    clamped = !clamped;
  }

let total_cost_packed ?rng config alg p =
  let total = ref Cost.zero in
  iter_packed ?rng config alg p (fun { cost; _ } ->
      total := Cost.add !total cost);
  Cost.total !total

module Session = struct
  type t = {
    stepper : Algorithm.stepper;
    limit : float;
    config : Config.t;
    dim : int;
    mutable position : Vec.t;
    mutable rounds : int;
    mutable clamped : int;
    mutable cost : Cost.breakdown;
  }

  let create ?rng config (alg : Algorithm.t) ~start =
    {
      stepper = alg.Algorithm.make ?rng config ~start;
      limit = Config.online_limit config;
      config;
      dim = Vec.dim start;
      position = Vec.copy start;
      rounds = 0;
      clamped = 0;
      cost = Cost.zero;
    }

  (* All request validation happens before the stepper is invoked: the
     stepper is a stateful closure, so calling it and then raising
     would leave a half-applied step (advanced algorithm state, stale
     session counters).  After an [Invalid_argument] from here the
     session is exactly as it was — the caller may drop the bad round
     and keep stepping, which the simtest harness's Reset-after-failure
     op relies on. *)
  let step session requests =
    Array.iter
      (fun v ->
        if Vec.dim v <> session.dim then
          invalid_arg "Engine.Session.step: request dimension mismatch";
        if not (is_finite_vec v) then
          invalid_arg "Engine.Session.step: non-finite request coordinate")
      requests;
    let proposed = session.stepper requests in
    let clamped =
      exceeds_limit ~from:session.position ~limit:session.limit proposed
    in
    let next =
      next_position ~from:session.position ~limit:session.limit proposed
    in
    let cost = Cost.step session.config ~from:session.position ~to_:next requests in
    session.position <- next;
    session.cost <- Cost.add session.cost cost;
    if clamped then session.clamped <- session.clamped + 1;
    let record = { round = session.rounds; position = next; proposed; clamped; cost } in
    session.rounds <- session.rounds + 1;
    record

  let position session = Vec.copy session.position

  let rounds session = session.rounds

  let clamped_count session = session.clamped

  let cost session = session.cost
end

let replay config ~start positions inst =
  if not (Cost.feasible ~limit:(Config.offline_limit config) ~start positions)
  then invalid_arg "Engine.replay: trajectory exceeds the offline budget m";
  Cost.trajectory config ~start positions inst
