(** Simulation engine: replay an instance through an online algorithm.

    The engine owns feasibility: whatever position the algorithm
    answers is clamped to the online budget [(1+δ)·m] before costs are
    charged, so every reported run is a legal trajectory.  (Well-behaved
    algorithms such as {!Mtc} are never actually clamped; the clamp is a
    safety net for experimental strategies.) *)

type step_record = {
  round : int;  (** 0-based round index. *)
  position : Geometry.Vec.t;  (** Server position after the round. *)
  proposed : Geometry.Vec.t;
      (** The algorithm's raw answer for the round, {e before} the clamp
          to the online budget.  Equal to [position] unless [clamped].
          The {!Analysis} auditor hooks on this to check proposed-move
          feasibility ahead of the safety net. *)
  clamped : bool;
      (** Whether the proposal exceeded the online budget and was cut
          back.  A well-behaved algorithm is never clamped. *)
  cost : Cost.breakdown;  (** This round's cost. *)
}

type run = {
  algorithm : string;
  config : Config.t;
  positions : Geometry.Vec.t array;
      (** Position after each round; length [T]. *)
  cost : Cost.breakdown;  (** Total cost over the run. *)
  clamped : int;
      (** Number of rounds whose proposal had to be clamped to the
          online budget.  Zero for every algorithm that respects the
          model; tests assert on this. *)
}

val run :
  ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t -> Instance.t -> run
(** [run config alg inst] plays [alg] over [inst] and returns the full
    trajectory and total cost. *)

val total_cost :
  ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t -> Instance.t -> float
(** [total_cost config alg inst] is [Cost.total (run ...).cost] without
    retaining the trajectory. *)

type stream_summary = {
  s_algorithm : string;
  s_rounds : int;  (** Rounds played. *)
  s_clamped : int;  (** Rounds whose proposal was clamped. *)
  s_cost : Cost.breakdown;  (** Total cost over the run. *)
  s_final : Geometry.Vec.t;  (** Server position after the last round. *)
}

val run_stream :
  ?rng:Prng.Xoshiro.t -> ?trace:(step_record -> unit) -> Config.t ->
  Algorithm.t -> start:Geometry.Vec.t -> rounds:int ->
  (int -> Geometry.Vec.t array) -> stream_summary
(** [run_stream config alg ~start ~rounds next] plays [rounds] rounds
    whose requests come from [next] (called once per round, in round
    order) without materializing an instance or a trajectory: live
    state is O(1) in [rounds] — the algorithm's stepper, the current
    position and the running totals — so a single session can stream
    [T = 10^7] rounds in constant memory.  [next round] is consumed
    within the round; the engine does not retain it.  The per-round
    arithmetic and its order are exactly {!iter}'s, so on
    [fun r -> inst.steps.(r)] the summary fields are bit-identical to
    {!run}'s totals on [inst] (pinned by the stream≡materialized
    test).  [trace], when given, receives each round's {!step_record}
    — sampling hooks for long horizons; the record's vectors are fresh
    per round.  Raises [Invalid_argument] if [rounds < 0]. *)

val iter_packed :
  ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t -> Instance.Packed.t ->
  (step_record -> unit) -> unit
(** {!iter} on the struct-of-arrays view.  Per-round requests are
    exposed to the algorithm through a fixed set of reused scratch
    vectors (no per-round boxing), so the records — and the whole run —
    are bit-identical to [iter config alg (Instance.unpack p)].
    Contract: the algorithm must not retain the request array or its
    vectors past the round; [proposed] in the record is likewise only
    valid during the callback if it aliases a request. *)

val run_packed :
  ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t -> Instance.Packed.t -> run
(** {!run} on the packed view; bit-identical to running the unpacked
    instance. *)

val total_cost_packed :
  ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t -> Instance.Packed.t ->
  float
(** {!total_cost} on the packed view. *)

val replay :
  Config.t -> start:Geometry.Vec.t -> Geometry.Vec.t array -> Instance.t ->
  Cost.breakdown
(** [replay config ~start positions inst] prices a precomputed
    trajectory (for example an offline optimum); checks it against the
    {e offline} budget [m] and raises [Invalid_argument] if it moves too
    far in some round. *)

val iter :
  ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t -> Instance.t ->
  (step_record -> unit) -> unit
(** [iter config alg inst f] streams per-round records to [f] without
    building the trajectory array — used by the potential-function
    checker and by long-horizon experiments. *)

(** Incremental sessions — for embedding the library in a live system
    where rounds arrive one at a time and no {!Instance} exists up
    front.  A session owns the server position and the running cost;
    each {!Session.step} consumes one round of requests, moves the
    server (clamped to the online budget) and returns the round's
    record.  [Engine.run] is equivalent to replaying an instance through
    a session, which the test suite checks. *)
module Session : sig
  type t

  val create :
    ?rng:Prng.Xoshiro.t -> Config.t -> Algorithm.t ->
    start:Geometry.Vec.t -> t
  (** Open a session with the server at [start]. *)

  val step : t -> Geometry.Vec.t array -> step_record
  (** Feed one round of requests; returns the post-round record.
      Raises [Invalid_argument] if any request's dimension differs
      from the session's or any coordinate is non-finite — and does so
      {e before} touching any session state (position, cost, counters,
      the algorithm's internal state), so a failed step is not half
      applied: the caller can drop the bad round and keep stepping the
      same session. *)

  val position : t -> Geometry.Vec.t
  (** Current server position. *)

  val rounds : t -> int
  (** Rounds played so far. *)

  val clamped_count : t -> int
  (** Rounds so far whose proposal was clamped to the online budget. *)

  val cost : t -> Cost.breakdown
  (** Total cost so far. *)
end
