type t = {
  d_factor : float;
  move_limit : float;
  delta : float;
  variant : Variant.t;
  warm_start : bool;
}

let make ?(d_factor = 1.0) ?(move_limit = 1.0) ?(delta = 0.0)
    ?(variant = Variant.Move_first) ?(warm_start = false) () =
  if not (Float.is_finite d_factor && Float.is_finite move_limit
          && Float.is_finite delta) then
    invalid_arg "Config.make: non-finite parameter";
  if d_factor < 1.0 then invalid_arg "Config.make: D must be >= 1";
  if move_limit <= 0.0 then invalid_arg "Config.make: m must be positive";
  if delta < 0.0 then invalid_arg "Config.make: delta must be >= 0";
  { d_factor; move_limit; delta; variant; warm_start }

let online_limit c = (1.0 +. c.delta) *. c.move_limit

let offline_limit c = c.move_limit

let with_delta c delta = make ~d_factor:c.d_factor ~move_limit:c.move_limit
    ~delta ~variant:c.variant ~warm_start:c.warm_start ()

let with_variant c variant = { c with variant }

let with_warm_start c warm_start = { c with warm_start }

let pp ppf c =
  Format.fprintf ppf "{D=%g; m=%g; delta=%g; %a%s}" c.d_factor c.move_limit
    c.delta Variant.pp c.variant
    (if c.warm_start then "; warm-start" else "")
