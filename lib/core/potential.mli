(** The potential functions of the paper's analysis (Sections 4.1–4.2)
    and an empirical per-step invariant checker.

    Theorem 4 is proved by exhibiting, for each of the regimes [r > D]
    and [r <= D], a potential [φ(P_Opt, P_Alg)] of the two server
    positions such that every round satisfies

    [C_Alg + Δφ <= K · C_Opt]

    for a constant [K = O(1/δ^{3/2})] (plane) or [O(1/δ)] (line).
    Summing over rounds and telescoping [φ] (which is non-negative and
    initially 0) yields the competitive ratio.

    The checker replays an online and an offline trajectory side by side
    and measures the smallest [K] that would make every round satisfy
    the inequality — an executable verification of the proof's figures
    (the paper's Figures 1–2 illustrate exactly this geometry). *)

val phi : Config.t -> r:int -> opt:Geometry.Vec.t -> alg:Geometry.Vec.t -> float
(** [phi config ~r ~opt ~alg] is the paper's potential for request
    count [r] per round: with [p = d(opt, alg)] and threshold
    [θ = δ·D·m/(4r)],

    - regime [r > D]:  [8·(r/(δm))·p²] if [p > θ], else [2·D·p];
    - regime [r <= D]: doubled — [16·(r/(δm))·p²] if [p > θ], else
      [4·D·p].

    Requires [config.delta > 0] and [r >= 1]. *)

type report = {
  rounds : int;  (** Rounds compared. *)
  min_constant : float;
      (** Smallest [K] with [C_Alg + Δφ <= K·C_Opt] on every round with
          positive optimal cost. *)
  zero_opt_rounds : int;
      (** Rounds where the optimum paid (numerically) nothing. *)
  max_zero_opt_excess : float;
      (** Largest [C_Alg + Δφ] over those rounds — the invariant wants
          this non-positive (up to numerical noise). *)
  final_potential : float;  (** [φ] after the last round (>= 0). *)
}

val check :
  Config.t -> r:int -> Instance.t ->
  alg_positions:Geometry.Vec.t array ->
  opt_positions:Geometry.Vec.t array -> report
(** [check config ~r inst ~alg_positions ~opt_positions] walks both
    trajectories (each of length [Instance.length inst], both starting
    at [inst.start]) and reports the empirical per-round constants.
    Raises [Invalid_argument] on length mismatch or [config.delta = 0]. *)

val phi_moving_client :
  Config.t -> opt:Geometry.Vec.t -> alg:Geometry.Vec.t -> float
(** The Theorem 10 potential: [φ = 2^{3/2}·D·d(opt, alg)].  Unlike
    {!phi} it needs no augmentation ([delta] may be 0) — the theorem's
    O(1) ratio for a slow moving client holds without it. *)

val check_moving_client :
  Config.t -> Instance.t ->
  alg_positions:Geometry.Vec.t array ->
  opt_positions:Geometry.Vec.t array -> report
(** Per-round invariant check with {!phi_moving_client}; the proof of
    Theorem 10 bounds the per-round constant by 36.  Requires a
    single-request instance ([Instance.single_trajectory] must be
    [Some _]). *)
