(* Offline vs online: inspect what the offline optimum actually does,
   side by side with MtC, on a small readable 1-D instance — and check
   the three offline solvers against each other.

   Run with:  dune exec examples/offline_vs_online.exe *)

module Vec = Geometry.Vec
module MS = Mobile_server

let () =
  (* Requests oscillate: 6 rounds at 0, 6 at 4, 6 at 0 again.  With
     D = 6 and m = 1 the optimum should barely move (movement is
     expensive and the cloud comes back); a naive chaser pays dearly. *)
  let steps =
    Array.init 18 (fun t ->
        let x = if t / 6 = 1 then 4.0 else 0.0 in
        [| Vec.make1 x |])
  in
  let instance = MS.Instance.make ~start:(Vec.zero 1) steps in
  let config = MS.Config.make ~d_factor:6.0 ~move_limit:1.0 ~delta:0.5 () in

  let dp = Offline.Line_dp.solve config instance in
  let cvx = Offline.Convex_opt.solve config instance in
  let brute = Offline.Brute.grid_1d ~cells:800 config instance in
  Printf.printf "offline optimum:   line DP %.4f | convex %.4f | brute %.4f\n"
    dp.Offline.Line_dp.cost cvx.Offline.Convex_opt.cost brute;

  let mtc_run = MS.Engine.run config MS.Mtc.algorithm instance in
  let greedy_run = MS.Engine.run config Baselines.Greedy.algorithm instance in
  Printf.printf "online:            MtC %.4f | greedy %.4f\n\n"
    (MS.Cost.total mtc_run.MS.Engine.cost)
    (MS.Cost.total greedy_run.MS.Engine.cost);

  print_endline "round  requests  OPT(DP)  MtC     greedy";
  Array.iteri
    (fun t round ->
      Printf.printf "%5d  %8.1f  %7.3f  %6.3f  %6.3f\n" (t + 1)
        round.(0).(0)
        dp.Offline.Line_dp.positions.(t).(0)
        mtc_run.MS.Engine.positions.(t).(0)
        greedy_run.MS.Engine.positions.(t).(0))
    instance.MS.Instance.steps;

  print_endline
    "\nNote how the optimum refuses to chase the excursion at all\n\
     (movement at weight D = 6 is never worth a round trip of 6 rounds),\n\
     MtC's r/D damping keeps it nearly as conservative, while greedy\n\
     sprints back and forth and pays for every trip."
