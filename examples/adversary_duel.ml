(* Adversary duel: watch the paper's lower-bound constructions defeat an
   un-augmented online algorithm, then watch augmentation rescue it.

   Reproduces, in miniature, the narrative arc of the paper: Theorem 1
   says no online algorithm can be competitive when it moves no faster
   than the offline optimum; granting it (1+delta) the speed (resource
   augmentation) caps the damage at O(1/delta) on the line.

   Run with:  dune exec examples/adversary_duel.exe *)

module MS = Mobile_server

let mean_ratio ~config ~t ~seeds gen =
  let base = Prng.Stream.named ~name:"example-duel" ~seed:2024 in
  let acc = Stats.Running.create () in
  for i = 0 to seeds - 1 do
    let rng = Prng.Stream.replicate base i in
    let c = gen ~t config rng in
    Stats.Running.add acc
      (Adversary.Construction.ratio_sample ~rng config MS.Mtc.algorithm c)
  done;
  Stats.Running.mean acc

let () =
  print_endline "Round 1: no augmentation (delta = 0), Theorem 1 adversary.";
  print_endline "The adversary walks away behind a coin flip; the online";
  print_endline "server can never catch up, and the ratio grows like sqrt T:\n";
  let config = MS.Config.make ~d_factor:1.0 ~move_limit:1.0 ~delta:0.0 () in
  List.iter
    (fun t ->
      let ratio =
        mean_ratio ~config ~t ~seeds:8 (fun ~t config rng ->
            Adversary.Thm1.generate ~dim:1 ~t config rng)
      in
      Printf.printf "  T = %5d   E[ratio] = %7.2f   (sqrt T = %.1f)\n" t
        ratio
        (sqrt (float_of_int t)))
    [ 64; 256; 1024; 4096 ];

  print_endline
    "\nRound 2: the same fight with resource augmentation, Theorem 2";
  print_endline "adversary (the strongest one for augmented algorithms).";
  print_endline "Now the ratio is independent of T and scales as 1/delta:\n";
  List.iter
    (fun delta ->
      let config = MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta () in
      let ratio =
        mean_ratio ~config ~t:0 ~seeds:8 (fun ~t:_ config rng ->
            Adversary.Thm2.generate ~cycles:3 ~dim:1 ~r_min:2 ~r_max:2 config
              rng)
      in
      Printf.printf "  delta = %-6g E[ratio] = %7.2f   (1/delta = %.1f)\n"
        delta ratio (1.0 /. delta))
    [ 1.0; 0.5; 0.25; 0.125 ];

  print_endline
    "\nRound 3: the Answer-First twist (Theorem 3).  Forcing the server";
  print_endline "to serve before moving makes the ratio grow with r/D even";
  print_endline "with maximal augmentation:\n";
  List.iter
    (fun r ->
      let config =
        MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta:1.0
          ~variant:MS.Variant.Serve_first ()
      in
      let ratio =
        mean_ratio ~config ~t:0 ~seeds:8 (fun ~t:_ config rng ->
            Adversary.Thm3.generate ~cycles:48 ~dim:1 ~r config rng)
      in
      Printf.printf "  r = %-3d      E[ratio] = %7.2f   (r/D = %.1f)\n" r
        ratio
        (float_of_int r /. 2.0))
    [ 2; 4; 8; 16; 32 ]
