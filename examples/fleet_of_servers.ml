(* A fleet of mobile servers — the extension the paper's conclusion
   proposes ("the k-Server Problem ... effectively turning it into the
   Page Migration Problem with multiple pages").

   Three hotspots of clients are active at once.  One capped-speed
   server has to park in the middle and pay the spread forever; a fleet
   of three, driven by the k-means-decomposed Move-to-Center rule,
   splits up and covers one hotspot each.

   Run with:  dune exec examples/fleet_of_servers.exe *)

module MS = Mobile_server
module FE = Multi.Fleet_engine

let () =
  let t = 300 in
  let rng = Prng.Stream.named ~name:"example-fleet" ~seed:5 in
  let instance =
    Workloads.Hotspots.generate ~hotspots:3 ~spread:15.0 ~drift:0.1 ~dim:2 ~t
      rng
  in
  let config = MS.Config.make ~d_factor:4.0 ~move_limit:1.0 ~delta:0.0 () in

  Printf.printf "Three drifting hotspots, %d rounds, D = 4, m = 1.\n\n" t;

  let algorithms =
    [ Multi.Fleet_mtc.independent; Multi.Fleet_mtc.greedy_partition;
      Multi.Fleet_mtc.kmeans_tracker; Multi.Fleet_algorithm.stay_put ]
  in
  let costs_for k =
    List.map
      (fun alg ->
        let alg_rng = Prng.Stream.named ~name:"example-fleet-alg" ~seed:1 in
        ( Printf.sprintf "%s (k=%d)" alg.Multi.Fleet_algorithm.name k,
          FE.total_cost ~rng:alg_rng ~k config alg instance ))
      algorithms
  in
  let bars = costs_for 1 @ costs_for 3 in
  print_string (Tables.Ascii_plot.histogram_bars ~width:40 bars);

  (* Show the per-round service cost of the best k=1 vs k=3 strategy as
     sparklines: the fleet's line collapses once the servers have fanned
     out to their hotspots. *)
  let service_series ~k alg =
    let series = Array.make t 0.0 in
    let run = FE.run ~rng:(Prng.Stream.named ~name:"ex-fleet-s" ~seed:2) ~k
        config alg instance
    in
    let prev = ref (Multi.Fleet.spread_start ~k instance.MS.Instance.start) in
    Array.iteri
      (fun i fleet ->
        let cost =
          Multi.Fleet.step config ~from:!prev ~to_:fleet
            instance.MS.Instance.steps.(i)
        in
        series.(i) <- cost.MS.Cost.service;
        prev := fleet)
      run.FE.fleets;
    series
  in
  let solo = service_series ~k:1 Multi.Fleet_mtc.kmeans_tracker in
  let fleet = service_series ~k:3 Multi.Fleet_mtc.kmeans_tracker in
  (* Downsample to 72 columns for the terminal. *)
  let bucket xs =
    Array.init 72 (fun i ->
        xs.(i * Array.length xs / 72))
  in
  Printf.printf "\nper-round service cost, one server:\n%s\n"
    (Tables.Ascii_plot.sparkline (bucket solo));
  Printf.printf "per-round service cost, fleet of three:\n%s\n"
    (Tables.Ascii_plot.sparkline (bucket fleet));
  Printf.printf
    "\n(Both scaled to their own range; the totals above tell the real\n\
     story: the fleet pays ~the hotspot radius per request, the single\n\
     server pays ~the hotspot spread.)\n"
