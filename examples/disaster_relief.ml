(* Disaster-relief ad-hoc network — the paper's Section 5 scenario.

   Helpers with smartphones coordinate inside a slowly drifting disaster
   zone; a data mule (the mobile server) physically carries the shared
   state.  The single-coordinator variant is a textbook Moving Client
   instance: the agent moves at most 0.85 per round, the server at 1.0,
   so Theorem 10 promises an O(1) competitive ratio WITHOUT resource
   augmentation — which we verify here, alongside the multi-helper
   variant.

   Run with:  dune exec examples/disaster_relief.exe *)

module MS = Mobile_server

let analyze ~label ~t instance =
  let config = MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta:0.0 () in
  let opt = Offline.Convex_opt.optimum ~max_iter:200 config instance in
  let mtc = MS.Engine.total_cost config MS.Mtc.algorithm instance in
  let greedy =
    MS.Engine.total_cost config Baselines.Greedy.algorithm instance
  in
  let stay = MS.Engine.total_cost config MS.Algorithm.stay_put instance in
  Format.printf "%s (%d rounds)@." label t;
  Format.printf "  offline optimum : %10.2f@." opt;
  Format.printf "  MtC             : %10.2f  (ratio %.3f)@." mtc (mtc /. opt);
  Format.printf "  greedy          : %10.2f  (ratio %.3f)@." greedy
    (greedy /. opt);
  Format.printf "  stay-put        : %10.2f  (ratio %.3f)@.@." stay
    (stay /. opt)

let () =
  let t = 600 in
  let single =
    Workloads.Disaster.generate_single ~zone_radius:10.0 ~zone_drift:0.05
      ~helper_speed:0.8 ~dim:2 ~t
      (Prng.Stream.named ~name:"example-disaster-single" ~seed:11)
  in
  (* Confirm the Moving Client hypothesis of Theorem 10 holds. *)
  assert (MS.Instance.is_moving_client ~speed:0.85 single);
  analyze ~label:"Single coordinator (Moving Client, m_a <= m_s)" ~t single;

  let multi =
    Workloads.Disaster.generate ~helpers:8 ~zone_radius:10.0 ~zone_drift:0.05
      ~helper_speed:0.8 ~dim:2 ~t
      (Prng.Stream.named ~name:"example-disaster-multi" ~seed:12)
  in
  analyze ~label:"Eight helpers (multi-request rounds)" ~t multi;

  (* Horizon independence: double the horizon, the ratio stays put. *)
  let config = MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta:0.0 () in
  List.iter
    (fun t ->
      let inst =
        Workloads.Disaster.generate_single ~helper_speed:0.8 ~dim:2 ~t
          (Prng.Stream.named ~name:"example-disaster-h" ~seed:13)
      in
      let opt = Offline.Convex_opt.optimum ~max_iter:150 config inst in
      let mtc = MS.Engine.total_cost config MS.Mtc.algorithm inst in
      Format.printf "T = %4d: MtC/OPT = %.3f@." t (mtc /. opt))
    [ 150; 300; 600; 1200 ];
  print_endline
    "\nThe ratio is flat in T: Theorem 10's O(1) guarantee, live."
