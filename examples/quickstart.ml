(* Quickstart: define a model, build a tiny instance, run Move-to-Center
   and compare against the exact offline optimum.

   Run with:  dune exec examples/quickstart.exe *)

module Vec = Geometry.Vec
module MS = Mobile_server

let () =
  (* 1. The model: movement weight D = 4, per-round movement limit
     m = 1, and 50% resource augmentation for the online server. *)
  let config = MS.Config.make ~d_factor:4.0 ~move_limit:1.0 ~delta:0.5 () in
  Format.printf "model: %a@." MS.Config.pp config;

  (* 2. An instance on the line: the request cloud sits at 0 for ten
     rounds, then jumps to 8 for ten rounds. *)
  let round_at x = [| Vec.make1 x; Vec.make1 (x +. 0.5) |] in
  let steps =
    Array.init 20 (fun t -> if t < 10 then round_at 0.0 else round_at 8.0)
  in
  let instance = MS.Instance.make ~start:(Vec.zero 1) steps in
  Format.printf "instance: %a@." MS.Instance.pp instance;

  (* 3. Run the paper's algorithm. *)
  let run = MS.Engine.run config MS.Mtc.algorithm instance in
  Format.printf "MtC total cost: %.3f (movement %.3f + service %.3f)@."
    (MS.Cost.total run.MS.Engine.cost)
    run.MS.Engine.cost.MS.Cost.move run.MS.Engine.cost.MS.Cost.service;
  Format.printf "MtC final position: %a@." Vec.pp
    run.MS.Engine.positions.(19);

  (* 4. Compare with the exact 1-D offline optimum (which is NOT
     augmented: it moves at most m per round). *)
  let opt = Offline.Line_dp.solve config instance in
  Format.printf "offline optimum: %.3f@." opt.Offline.Line_dp.cost;
  Format.printf "empirical competitive ratio: %.3f@."
    (MS.Cost.total run.MS.Engine.cost /. opt.Offline.Line_dp.cost);

  (* 5. And with a baseline that never moves. *)
  let lazy_cost = MS.Engine.total_cost config MS.Algorithm.stay_put instance in
  Format.printf "stay-put baseline: %.3f (%.2fx MtC)@." lazy_cost
    (lazy_cost /. MS.Cost.total run.MS.Engine.cost)
