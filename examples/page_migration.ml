(* From Page Migration to the Mobile Server Problem.

   The paper generalizes the classical Page Migration Problem (a page on
   a network graph, migrations charged D per unit distance, no speed
   limit) by moving to Euclidean space and capping the per-round
   movement.  This example walks that exact path:

   1. run the classical algorithms on a geometric network and compare
      with the exact graph optimum;
   2. embed the same workload into the plane and watch what the
      movement cap does to the achievable cost.

   Run with:  dune exec examples/page_migration.exe *)

module G = Network.Graph
module PM = Network.Pm_model

let () =
  let rng = Prng.Stream.named ~name:"example-pm" ~seed:3 in
  let graph, layout = G.random_geometric ~n:20 rng in
  let metric = Network.Dijkstra.all_pairs graph in
  let d = 4.0 in
  let inst = PM.localized_requests graph ~t:300 rng in
  Printf.printf
    "Geometric network: %d nodes, %d edges, diameter %.2f.\n\
     Localized requests with occasional hotspot switches, D = %g.\n\n"
    (G.nodes graph)
    (List.length (G.edges graph))
    (Network.Dijkstra.diameter metric)
    d;

  (* 1. The classical, uncapped problem. *)
  let opt = Network.Pm_offline.optimum metric ~d_factor:d inst in
  Printf.printf "exact offline optimum (uncapped): %.2f\n\n" opt;
  print_string
    (Tables.Ascii_plot.histogram_bars ~width:40
       (List.map
          (fun alg ->
            let run =
              PM.run
                ~rng:(Prng.Stream.named ~name:"example-pm-alg" ~seed:1)
                metric ~d_factor:d alg inst
            in
            (alg.PM.name, PM.total run /. opt))
          Network.Pm_algorithms.all));
  print_endline
    "\n(ratios vs the exact optimum; Westbrook's bounds: coin-flip <= 3,\n\
     move-to-min <= 7 — both hold with room to spare on benign inputs)\n";

  (* 2. The same workload as a Mobile Server instance. *)
  let mobile = Network.Embedding.to_mobile_instance ~layout inst in
  Printf.printf
    "Embedding the workload into the plane (layout gap %.2f%%):\n\n"
    (100.0 *. Network.Embedding.round_trip_gap ~metric ~layout);
  Printf.printf "%6s  %18s  %14s  %14s\n" "cap m" "capped server OPT"
    "cap overhead" "MtC ratio";
  List.iter
    (fun m ->
      let config = Mobile_server.Config.make ~d_factor:d ~move_limit:m () in
      let capped = Offline.Convex_opt.optimum ~max_iter:150 config mobile in
      let mtc =
        Mobile_server.Engine.total_cost config Mobile_server.Mtc.algorithm
          mobile
      in
      Printf.printf "%6g  %18.2f  %14.3f  %14.3f\n" m capped
        (capped /. opt) (mtc /. capped))
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  print_endline
    "\nAs the cap m grows the capped optimum approaches the uncapped page\n\
     optimum — the mobile-server model degenerates into Page Migration,\n\
     exactly the relationship the paper's introduction describes."
