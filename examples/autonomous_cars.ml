(* Autonomous-car platoon — the paper's opening motivation.

   A platoon of cars shares a coordination page carried by a mobile
   server (think: one car, or a drone, holds the master copy).  Every
   round each car requests data; the server may relocate at bounded
   speed.  We compare the algorithms across server speeds, showing the
   Theorem 8 / Theorem 10 phase change: once the server is at least as
   fast as the platoon, costs collapse to a small constant over OPT.

   Run with:  dune exec examples/autonomous_cars.exe *)

module MS = Mobile_server

let () =
  let dim = 2 and t = 400 in
  let platoon_speed = 1.0 in
  let rng = Prng.Stream.named ~name:"example-cars" ~seed:7 in
  let instance =
    Workloads.Cars.generate ~cars:5 ~platoon_speed ~lane_gap:0.5 ~jitter:0.1
      ~dim ~t rng
  in
  Format.printf
    "Platoon of 5 cars, %d rounds, cruise speed %.1f per round.@.@." t
    platoon_speed;
  let server_speeds = [ 0.5; 0.8; 1.0; 1.5; 2.0 ] in
  let algorithms =
    [
      MS.Mtc.algorithm;
      Baselines.Greedy.algorithm;
      Baselines.Follow_ema.algorithm ();
      MS.Algorithm.stay_put;
    ]
  in
  let rows =
    List.map
      (fun speed ->
        let config =
          MS.Config.make ~d_factor:4.0 ~move_limit:speed ~delta:0.0 ()
        in
        let opt = Offline.Convex_opt.optimum ~max_iter:150 config instance in
        Tables.cell speed
        :: Tables.cell opt
        :: List.map
             (fun alg ->
               let cost = MS.Engine.total_cost config alg instance in
               Tables.cell (cost /. opt))
             algorithms)
      server_speeds
  in
  let header =
    "server speed" :: "OPT cost"
    :: List.map (fun a -> a.MS.Algorithm.name ^ " /OPT") algorithms
  in
  Tables.print ~title:"Cost against the offline optimum (D = 4)"
    (Tables.create ~header rows);
  print_endline
    "Below cruise speed the server falls behind and every online\n\
     algorithm degrades (Theorem 8's regime); at or above cruise speed\n\
     MtC tracks the platoon within a small constant of OPT (Theorem 10)."
