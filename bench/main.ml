(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- everything (E1..E9, T1, micro)
     dune exec bench/main.exe -- e1 e4        -- selected experiments
     dune exec bench/main.exe -- micro        -- microbenchmarks only
     dune exec bench/main.exe -- --quick ...  -- reduced horizons/seeds
     dune exec bench/main.exe -- --jobs 4 ... -- worker domains for sweeps
     dune exec bench/main.exe -- parallel     -- jobs=1 vs jobs=N comparison
                                                 (JSON to BENCH_parallel.json,
                                                  or --parallel-out PATH)

   Each experiment regenerates one reproduction target (a theorem of the
   paper; see DESIGN.md §4 and EXPERIMENTS.md) and prints its tables.
   The micro suite times the primitive operations with Bechamel. *)

module MS = Mobile_server

(* ------------------------------------------------------------------ *)
(* Microbenchmarks.                                                    *)

let micro_tests () =
  let open Bechamel in
  let rng = Prng.Stream.named ~name:"bench-micro" ~seed:1 in
  let points n =
    Array.init n (fun _ ->
        Geometry.Vec.make2
          (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
          (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0))
  in
  let pts16 = points 16 and pts128 = points 128 in
  let server = Geometry.Vec.zero 2 in
  let config = MS.Config.make ~d_factor:4.0 ~delta:0.5 () in
  let cluster_inst =
    Workloads.Clusters.generate ~dim:2 ~t:256
      (Prng.Stream.named ~name:"bench-inst" ~seed:2)
  in
  let line_inst =
    Workloads.Clusters.generate ~r_min:2 ~r_max:2 ~arena:10.0 ~dim:1 ~t:128
      (Prng.Stream.named ~name:"bench-line" ~seed:3)
  in
  [
    Test.make ~name:"geometric-median-16"
      (Staged.stage (fun () ->
           ignore (Geometry.Median.weiszfeld ~tie_break:server pts16)));
    Test.make ~name:"geometric-median-128"
      (Staged.stage (fun () ->
           ignore (Geometry.Median.weiszfeld ~tie_break:server pts128)));
    Test.make ~name:"mtc-decision-16"
      (Staged.stage (fun () ->
           ignore (MS.Mtc.target config ~server pts16)));
    Test.make ~name:"engine-run-T256"
      (Staged.stage (fun () ->
           ignore (MS.Engine.total_cost config MS.Mtc.algorithm cluster_inst)));
    Test.make ~name:"line-dp-T128"
      (Staged.stage (fun () ->
           ignore (Offline.Line_dp.optimum ~grid_per_m:32 config line_inst)));
    Test.make ~name:"convex-opt-T64"
      (Staged.stage
         (let small =
            Workloads.Clusters.generate ~dim:2 ~t:64
              (Prng.Stream.named ~name:"bench-cvx" ~seed:4)
          in
          fun () ->
            ignore
              (Offline.Convex_opt.optimum ~max_iter:20 ~sweeps:3 config small)));
    Test.make ~name:"thm2-generate"
      (Staged.stage (fun () ->
           ignore
             (Adversary.Thm2.generate ~cycles:2 ~dim:1 ~r_min:1 ~r_max:2
                config
                (Prng.Stream.named ~name:"bench-thm2" ~seed:5))));
    Test.make ~name:"workload-clusters-T256"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Clusters.generate ~dim:2 ~t:256
                (Prng.Stream.named ~name:"bench-wl" ~seed:6))));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "\n=== MICRO: primitive-operation timings (Bechamel) ===\n";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances (Test.make_grouped
            ~name:"g" [ test ]) in
        let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name result acc ->
            let name =
              match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            let ns =
              match Analyze.OLS.estimates result with
              | Some (t :: _) -> t
              | _ -> nan
            in
            [ name; Tables.cell (ns /. 1000.0); Tables.cell ns ] :: acc)
          analyzed [])
      (micro_tests ())
    |> List.concat
  in
  Tables.print
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "us/run"; "ns/run" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Parallel scaling: run a few multi-seed experiments at jobs=1 and at
   the requested jobs count, check the reports are byte-identical (the
   Exec determinism contract), and record wall-clock per experiment. *)

let parallel_sample = [ "e4"; "e9"; "t1" ]

let run_parallel ~quick ~jobs ~out () =
  Printf.printf "\n=== PARALLEL: jobs=1 vs jobs=%d scaling check ===\n\n" jobs;
  let time_at ~jobs id =
    Exec.set_jobs jobs;
    let t0 = Unix.gettimeofday () in
    let result = Experiments.Catalog.run ~quick id in
    (Unix.gettimeofday () -. t0, Experiments.Catalog.result_to_markdown result)
  in
  let rows =
    List.map
      (fun id ->
        let s1, report1 = time_at ~jobs:1 id in
        let sn, reportn = time_at ~jobs id in
        let identical = String.equal report1 reportn in
        let speedup = if sn > 0.0 then s1 /. sn else 1.0 in
        Printf.printf
          "%-4s jobs=1 %6.2fs   jobs=%d %6.2fs   speedup %.2fx   identical %b\n%!"
          id s1 jobs sn speedup identical;
        (id, s1, sn, speedup, identical))
      parallel_sample
  in
  Exec.set_jobs jobs;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-parallel-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"default_jobs\": %d,\n" (Exec.default_jobs ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i (id, s1, sn, speedup, identical) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"seconds_jobs1\": %.6g, \"seconds_jobsN\": \
            %.6g, \"speedup\": %.6g, \"identical_output\": %b}%s\n"
           id s1 sn speedup identical
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "parallel scaling report written to %s\n" out;
  if not (List.for_all (fun (_, _, _, _, identical) -> identical) rows) then begin
    prerr_endline "FATAL: parallel output differs from sequential output";
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* Optional: --markdown <path> writes the whole report as Markdown. *)
  let markdown_path = ref None in
  let parallel_out = ref "BENCH_parallel.json" in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest -> strip rest
    | "--markdown" :: path :: rest ->
      markdown_path := Some path;
      strip rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> Exec.set_jobs j
       | Some _ | None ->
         prerr_endline "bench: --jobs expects a positive integer";
         exit 2);
      strip rest
    | "--parallel-out" :: path :: rest ->
      parallel_out := path;
      strip rest
    | arg :: rest -> arg :: strip rest
  in
  let args = strip args in
  let wanted = if args = [] then Experiments.Catalog.ids @ [ "micro" ] else args in
  let t0 = Unix.gettimeofday () in
  let results = ref [] in
  List.iter
    (fun id ->
      let started = Unix.gettimeofday () in
      (match id with
       | "micro" -> run_micro ()
       | "parallel" ->
         run_parallel ~quick ~jobs:(Exec.jobs ()) ~out:!parallel_out ()
       | id ->
         let result = Experiments.Catalog.run ~quick id in
         Experiments.Catalog.print_result result;
         results := result :: !results);
      Printf.printf "[%s finished in %.1fs]\n%!" id
        (Unix.gettimeofday () -. started))
    wanted;
  (match !markdown_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc
           (Experiments.Catalog.report_markdown (List.rev !results)));
     Printf.printf "markdown report written to %s\n" path);
  Printf.printf "\nAll done in %.1fs.\n" (Unix.gettimeofday () -. t0)
