(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- everything (E1..E9, T1, micro)
     dune exec bench/main.exe -- e1 e4        -- selected experiments
     dune exec bench/main.exe -- micro        -- microbenchmarks only
     dune exec bench/main.exe -- --quick ...  -- reduced horizons/seeds
     dune exec bench/main.exe -- --jobs 4 ... -- worker domains for sweeps
     dune exec bench/main.exe -- parallel     -- jobs=1 vs jobs=N comparison
                                                 (JSON to BENCH_parallel.json,
                                                  or --parallel-out PATH)
     dune exec bench/main.exe -- hotpath      -- allocation-free kernels and
                                                 warm-start vs seed replicas
                                                 (JSON to BENCH_hotpath.json,
                                                  or --hotpath-out PATH;
                                                  golden file override with
                                                  --golden PATH)

   Each experiment regenerates one reproduction target (a theorem of the
   paper; see DESIGN.md §4 and EXPERIMENTS.md) and prints its tables.
   The micro suite times the primitive operations with Bechamel. *)

module MS = Mobile_server

(* ------------------------------------------------------------------ *)
(* Microbenchmarks.                                                    *)

let micro_tests () =
  let open Bechamel in
  let rng = Prng.Stream.named ~name:"bench-micro" ~seed:1 in
  let points n =
    Array.init n (fun _ ->
        Geometry.Vec.make2
          (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
          (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0))
  in
  let pts16 = points 16 and pts128 = points 128 in
  let server = Geometry.Vec.zero 2 in
  let config = MS.Config.make ~d_factor:4.0 ~delta:0.5 () in
  let cluster_inst =
    Workloads.Clusters.generate ~dim:2 ~t:256
      (Prng.Stream.named ~name:"bench-inst" ~seed:2)
  in
  let line_inst =
    Workloads.Clusters.generate ~r_min:2 ~r_max:2 ~arena:10.0 ~dim:1 ~t:128
      (Prng.Stream.named ~name:"bench-line" ~seed:3)
  in
  [
    Test.make ~name:"geometric-median-16"
      (Staged.stage (fun () ->
           ignore (Geometry.Median.weiszfeld ~tie_break:server pts16)));
    Test.make ~name:"geometric-median-128"
      (Staged.stage (fun () ->
           ignore (Geometry.Median.weiszfeld ~tie_break:server pts128)));
    Test.make ~name:"mtc-decision-16"
      (Staged.stage (fun () ->
           ignore (MS.Mtc.target config ~server pts16)));
    Test.make ~name:"engine-run-T256"
      (Staged.stage (fun () ->
           ignore (MS.Engine.total_cost config MS.Mtc.algorithm cluster_inst)));
    Test.make ~name:"line-dp-T128"
      (Staged.stage (fun () ->
           ignore (Offline.Line_dp.optimum ~grid_per_m:32 config line_inst)));
    Test.make ~name:"convex-opt-T64"
      (Staged.stage
         (let small =
            Workloads.Clusters.generate ~dim:2 ~t:64
              (Prng.Stream.named ~name:"bench-cvx" ~seed:4)
          in
          fun () ->
            ignore
              (Offline.Convex_opt.optimum ~max_iter:20 ~sweeps:3 config small)));
    Test.make ~name:"thm2-generate"
      (Staged.stage (fun () ->
           ignore
             (Adversary.Thm2.generate ~cycles:2 ~dim:1 ~r_min:1 ~r_max:2
                config
                (Prng.Stream.named ~name:"bench-thm2" ~seed:5))));
    Test.make ~name:"workload-clusters-T256"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Clusters.generate ~dim:2 ~t:256
                (Prng.Stream.named ~name:"bench-wl" ~seed:6))));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "\n=== MICRO: primitive-operation timings (Bechamel) ===\n";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances (Test.make_grouped
            ~name:"g" [ test ]) in
        let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name result acc ->
            let name =
              match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            let ns =
              match Analyze.OLS.estimates result with
              | Some (t :: _) -> t
              | _ -> nan
            in
            [ name; Tables.cell (ns /. 1000.0); Tables.cell ns ] :: acc)
          analyzed [])
      (micro_tests ())
    |> List.concat
  in
  Tables.print
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "us/run"; "ns/run" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Hot-path benchmark: allocation-free kernels and the warm-started
   Weiszfeld iteration, priced against faithful replicas of the seed
   (allocating, cold-start) implementations, plus the byte-identity
   checks that prove the rewrite changed no science.  JSON lands in
   BENCH_hotpath.json (or --hotpath-out PATH). *)

(* Replicas of the pre-optimization kernels: the exact arithmetic of
   the seed code, materializing a difference vector per distance and
   restarting Weiszfeld from the centroid.  Kept here (not in lib/) so
   the comparison target cannot drift into production use. *)
module Seed_replica = struct
  module V = Geometry.Vec

  let dist u v = V.norm (V.sub u v)

  (* The seed's Vardi–Zhang loop for the general-position case (the
     1-D/collinear/degenerate branches are shared with the current code
     and are not on the hot path). *)
  let weiszfeld ?(eps = 1e-10) ?(max_iter = 200) points =
    let n = Array.length points in
    let d = V.dim points.(0) in
    if n = 1 then V.copy points.(0)
    else begin
      let origin = points.(0) in
      let spread =
        Array.fold_left (fun acc p -> Float.max acc (dist origin p)) 0.0 points
      in
      if spread < 1e-300 then V.copy origin
      else begin
        let y = ref (V.centroid points) in
        let tol = Float.max eps (eps *. spread) in
        let iter = ref 0 in
        let continue_ = ref true in
        while !continue_ && !iter < max_iter do
          incr iter;
          let anchor_eps = 1e-13 *. spread in
          let multiplicity = ref 0 in
          let inv_sum = ref 0.0 in
          let weighted = Array.make d 0.0 in
          let resultant = Array.make d 0.0 in
          Array.iter
            (fun p ->
              let dist = dist !y p in
              if dist <= anchor_eps then incr multiplicity
              else begin
                let w = 1.0 /. dist in
                inv_sum := !inv_sum +. w;
                for i = 0 to d - 1 do
                  weighted.(i) <- weighted.(i) +. (w *. p.(i));
                  resultant.(i) <- resultant.(i) +. (w *. (p.(i) -. !y.(i)))
                done
              end)
            points;
          if Float.equal !inv_sum 0.0 then continue_ := false
          else begin
            let t = Array.map (fun w -> w /. !inv_sum) weighted in
            let next =
              if !multiplicity = 0 then t
              else begin
                let r = V.norm resultant in
                let k = float_of_int !multiplicity in
                if r <= k then begin
                  continue_ := false;
                  V.copy !y
                end
                else
                  let beta = k /. r in
                  V.add (V.scale (1.0 -. beta) t) (V.scale beta !y)
              end
            in
            if dist next !y <= tol then continue_ := false;
            y := next
          end
        done;
        !y
      end
    end

  (* MtC with the replica median: times a full engine round on the seed
     kernels inside the current binary.  Degenerate rounds (fewer than
     three requests) share the current code in both runs, so the
     comparison isolates the hot path. *)
  let center ~server requests =
    if Array.length requests < 3 then Geometry.Median.center ~server requests
    else weiszfeld requests

  let algorithm = MS.Mtc.with_center ~name:"mtc-seed-replica" center
end

let time_per ~repeat f =
  (* Seconds per call, one warm-up call outside the clock. *)
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeat do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int repeat

let run_hotpath ~quick ~out ~golden () =
  print_endline "\n=== HOTPATH: kernels, warm-started median, identity ===\n";
  let rng = Prng.Stream.named ~name:"bench-hotpath" ~seed:1 in
  let point () =
    Geometry.Vec.make2
      (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
      (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
  in
  (* --- kernel micro: fused vs allocating distance ----------------- *)
  let pairs = Array.init 512 (fun _ -> (point (), point ())) in
  let kernel_reps = if quick then 200 else 2000 in
  let sum_with dist () =
    Array.fold_left (fun acc (u, v) -> acc +. dist u v) 0.0 pairs
  in
  let per_call secs = secs /. float_of_int (Array.length pairs) *. 1e9 in
  let dist_alloc_ns =
    per_call (time_per ~repeat:kernel_reps (sum_with Seed_replica.dist))
  in
  let dist_fused_ns =
    per_call (time_per ~repeat:kernel_reps (sum_with Geometry.Vec.dist))
  in
  (* --- warm-started median on drifting request sets ---------------- *)
  (* MtC's situation each round: the same requests, each nudged a
     little, so the previous median is an excellent starting iterate.
     The set is a tight cluster plus far outliers — the heavy-tailed
     shape where the centroid (cold start) lands far from the median
     and the cold iteration pays for the trip every round. *)
  let rounds = if quick then 60 else 400 in
  let n_pts = 16 in
  let n_outliers = 4 in
  let sets =
    let current =
      Array.init n_pts (fun i ->
          if i < n_pts - n_outliers then
            Geometry.Vec.make2
              (Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.3)
              (Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.3)
          else
            Geometry.Vec.make2
              (Prng.Dist.uniform rng ~lo:40.0 ~hi:60.0)
              (Prng.Dist.uniform rng ~lo:(-60.0) ~hi:60.0))
    in
    Array.init rounds (fun _ ->
        let snapshot = Array.map Geometry.Vec.copy current in
        Array.iteri
          (fun i p ->
            current.(i) <-
              Geometry.Vec.make2
                (Geometry.Vec.x p +. Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.05)
                (Geometry.Vec.y p +. Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.05))
          current;
        snapshot)
  in
  let median_reps = if quick then 3 else 10 in
  let cold_total =
    time_per ~repeat:median_reps (fun () ->
        Array.iter (fun pts -> ignore (Geometry.Median.weiszfeld pts)) sets)
  in
  let warm_total =
    time_per ~repeat:median_reps (fun () ->
        let prev = ref None in
        Array.iter
          (fun pts ->
            let m = Geometry.Median.weiszfeld ?init:!prev pts in
            prev := Some m)
          sets)
  in
  let seed_total =
    time_per ~repeat:median_reps (fun () ->
        Array.iter (fun pts -> ignore (Seed_replica.weiszfeld pts)) sets)
  in
  let median_seed_us = seed_total /. float_of_int rounds *. 1e6 in
  let median_cold_us = cold_total /. float_of_int rounds *. 1e6 in
  let median_warm_us = warm_total /. float_of_int rounds *. 1e6 in
  (* The headline: the PR's total effect on the median hot path (seed
     kernels + cold start, versus fused kernels + warm start).  The
     same-kernel warm-vs-cold ratio is reported separately; Weiszfeld
     converges linearly, so a closer start saves only a log-factor of
     iterations and that ratio is necessarily modest. *)
  let warm_speedup = median_seed_us /. median_warm_us in
  let warm_vs_cold = median_cold_us /. median_warm_us in
  (* Warm and cold runs must land on the same median (within the
     iteration tolerance scaled by the point spread). *)
  let warm_max_dev =
    let prev = ref None in
    Array.fold_left
      (fun acc pts ->
        let cold = Geometry.Median.weiszfeld pts in
        let warm = Geometry.Median.weiszfeld ?init:!prev pts in
        prev := Some warm;
        Float.max acc (Geometry.Vec.dist cold warm))
      0.0 sets
  in
  (* --- full engine rounds: seed-replica kernels vs current ---------- *)
  let config = MS.Config.make ~d_factor:4.0 ~delta:0.5 () in
  let inst =
    Workloads.Clusters.generate ~dim:2 ~t:256
      (Prng.Stream.named ~name:"bench-inst" ~seed:2)
  in
  let t_len = MS.Instance.length inst in
  let engine_reps = if quick then 3 else 10 in
  let engine_seed_us =
    time_per ~repeat:engine_reps (fun () ->
        MS.Engine.total_cost config Seed_replica.algorithm inst)
    /. float_of_int t_len *. 1e6
  in
  let engine_opt_us =
    time_per ~repeat:engine_reps (fun () ->
        MS.Engine.total_cost config MS.Mtc.algorithm inst)
    /. float_of_int t_len *. 1e6
  in
  let warm_config = MS.Config.with_warm_start config true in
  let engine_warm_us =
    time_per ~repeat:engine_reps (fun () ->
        MS.Engine.total_cost warm_config MS.Mtc.algorithm inst)
    /. float_of_int t_len *. 1e6
  in
  let cost_seed = MS.Engine.total_cost config Seed_replica.algorithm inst in
  let cost_opt = MS.Engine.total_cost config MS.Mtc.algorithm inst in
  let cost_warm = MS.Engine.total_cost warm_config MS.Mtc.algorithm inst in
  let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b) in
  let engine_cost_rel = rel cost_seed cost_opt in
  let warm_cost_rel = rel cost_warm cost_opt in
  (* --- byte-identity: the science did not move --------------------- *)
  let golden_expected =
    match open_in golden with
    | exception Sys_error msg ->
      Printf.eprintf "hotpath: cannot read golden file %s (%s)\n" golden msg;
      None
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Some (really_input_string ic (in_channel_length ic)))
  in
  let identity_golden =
    match golden_expected with
    | None -> false
    | Some expected ->
      String.equal expected (Experiments.Golden.trajectory_string ())
  in
  (* Default-config catalog report, sequential vs parallel harness. *)
  let report_at jobs =
    Exec.set_jobs jobs;
    Experiments.Catalog.result_to_markdown
      (Experiments.Catalog.run ~quick:true "e1")
  in
  let saved_jobs = Exec.jobs () in
  let report_seq = report_at 1 in
  let report_par = report_at 2 in
  Exec.set_jobs saved_jobs;
  let identity_report = String.equal report_seq report_par in
  (* --- render ------------------------------------------------------ *)
  Tables.print
    ~title:"hot-path timings (lower is better)"
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "seed / cold"; "optimized / warm"; "speedup" ]
       [
         [ "Vec.dist (ns)"; Tables.cell dist_alloc_ns;
           Tables.cell dist_fused_ns;
           Tables.cell (dist_alloc_ns /. dist_fused_ns) ];
         [ Printf.sprintf "median, %d pts cold (us)" n_pts;
           Tables.cell median_seed_us; Tables.cell median_cold_us;
           Tables.cell (median_seed_us /. median_cold_us) ];
         [ Printf.sprintf "median, %d pts warm (us)" n_pts;
           Tables.cell median_seed_us; Tables.cell median_warm_us;
           Tables.cell warm_speedup ];
         [ "engine round (us)"; Tables.cell engine_seed_us;
           Tables.cell engine_opt_us;
           Tables.cell (engine_seed_us /. engine_opt_us) ];
         [ "engine round, warm (us)"; Tables.cell engine_seed_us;
           Tables.cell engine_warm_us;
           Tables.cell (engine_seed_us /. engine_warm_us) ];
       ]);
  Printf.printf "warm-vs-cold median deviation : %.3g (tolerance-level)\n"
    warm_max_dev;
  Printf.printf "engine cost drift seed->opt   : %.3g (must be 0)\n"
    engine_cost_rel;
  Printf.printf "engine cost drift warm        : %.3g (tolerance-level)\n"
    warm_cost_rel;
  Printf.printf "golden trajectory identical   : %b\n" identity_golden;
  Printf.printf "e1 report jobs1 = jobs2       : %b\n%!" identity_report;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-hotpath-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"kernel_dist_alloc_ns\": %.6g,\n" dist_alloc_ns);
  Buffer.add_string buf
    (Printf.sprintf "  \"kernel_dist_fused_ns\": %.6g,\n" dist_fused_ns);
  Buffer.add_string buf
    (Printf.sprintf "  \"kernel_dist_speedup\": %.6g,\n"
       (dist_alloc_ns /. dist_fused_ns));
  Buffer.add_string buf
    (Printf.sprintf "  \"median_seed_us\": %.6g,\n" median_seed_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_cold_us\": %.6g,\n" median_cold_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_us\": %.6g,\n" median_warm_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_speedup\": %.6g,\n" warm_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_vs_cold_same_kernel\": %.6g,\n"
       warm_vs_cold);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_max_deviation\": %.6g,\n" warm_max_dev);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_seed_us\": %.6g,\n" engine_seed_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_opt_us\": %.6g,\n" engine_opt_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_warm_us\": %.6g,\n" engine_warm_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_speedup\": %.6g,\n"
       (engine_seed_us /. engine_opt_us));
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_cost_rel_drift\": %.6g,\n" engine_cost_rel);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_warm_cost_rel_drift\": %.6g,\n" warm_cost_rel);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_golden_trajectory\": %b,\n" identity_golden);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_report_jobs1_vs_jobs2\": %b\n"
       identity_report);
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "hotpath report written to %s\n" out;
  if not (identity_golden && identity_report) then begin
    prerr_endline
      "FATAL: hot-path rewrite is not byte-identical to the baseline";
    exit 1
  end;
  if engine_cost_rel > 0.0 then begin
    prerr_endline
      "FATAL: seed-replica and optimized engine runs disagree on cost";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel scaling: run a few multi-seed experiments at jobs=1 and at
   the requested jobs count, check the reports are byte-identical (the
   Exec determinism contract), and record wall-clock per experiment. *)

let parallel_sample = [ "e4"; "e9"; "t1" ]

let run_parallel ~quick ~jobs ~out () =
  Printf.printf "\n=== PARALLEL: jobs=1 vs jobs=%d scaling check ===\n\n" jobs;
  let time_at ~jobs id =
    Exec.set_jobs jobs;
    let t0 = Unix.gettimeofday () in
    let result = Experiments.Catalog.run ~quick id in
    (Unix.gettimeofday () -. t0, Experiments.Catalog.result_to_markdown result)
  in
  let rows =
    List.map
      (fun id ->
        let s1, report1 = time_at ~jobs:1 id in
        let sn, reportn = time_at ~jobs id in
        let identical = String.equal report1 reportn in
        let speedup = if sn > 0.0 then s1 /. sn else 1.0 in
        Printf.printf
          "%-4s jobs=1 %6.2fs   jobs=%d %6.2fs   speedup %.2fx   identical %b\n%!"
          id s1 jobs sn speedup identical;
        (id, s1, sn, speedup, identical))
      parallel_sample
  in
  Exec.set_jobs jobs;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-parallel-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"default_jobs\": %d,\n" (Exec.default_jobs ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i (id, s1, sn, speedup, identical) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"seconds_jobs1\": %.6g, \"seconds_jobsN\": \
            %.6g, \"speedup\": %.6g, \"identical_output\": %b}%s\n"
           id s1 sn speedup identical
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "parallel scaling report written to %s\n" out;
  if not (List.for_all (fun (_, _, _, _, identical) -> identical) rows) then begin
    prerr_endline "FATAL: parallel output differs from sequential output";
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* Optional: --markdown <path> writes the whole report as Markdown. *)
  let markdown_path = ref None in
  let parallel_out = ref "BENCH_parallel.json" in
  let hotpath_out = ref "BENCH_hotpath.json" in
  let golden_path = ref Experiments.Golden.golden_path in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest -> strip rest
    | "--markdown" :: path :: rest ->
      markdown_path := Some path;
      strip rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> Exec.set_jobs j
       | Some _ | None ->
         prerr_endline "bench: --jobs expects a positive integer";
         exit 2);
      strip rest
    | "--parallel-out" :: path :: rest ->
      parallel_out := path;
      strip rest
    | "--hotpath-out" :: path :: rest ->
      hotpath_out := path;
      strip rest
    | "--golden" :: path :: rest ->
      golden_path := path;
      strip rest
    | arg :: rest -> arg :: strip rest
  in
  let args = strip args in
  let wanted = if args = [] then Experiments.Catalog.ids @ [ "micro" ] else args in
  let t0 = Unix.gettimeofday () in
  let results = ref [] in
  List.iter
    (fun id ->
      let started = Unix.gettimeofday () in
      (match id with
       | "micro" -> run_micro ()
       | "parallel" ->
         run_parallel ~quick ~jobs:(Exec.jobs ()) ~out:!parallel_out ()
       | "hotpath" ->
         run_hotpath ~quick ~out:!hotpath_out ~golden:!golden_path ()
       | id ->
         let result = Experiments.Catalog.run ~quick id in
         Experiments.Catalog.print_result result;
         results := result :: !results);
      Printf.printf "[%s finished in %.1fs]\n%!" id
        (Unix.gettimeofday () -. started))
    wanted;
  (match !markdown_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc
           (Experiments.Catalog.report_markdown (List.rev !results)));
     Printf.printf "markdown report written to %s\n" path);
  Printf.printf "\nAll done in %.1fs.\n" (Unix.gettimeofday () -. t0)
