(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                 -- everything (E1..E9, T1, micro)
     dune exec bench/main.exe -- e1 e4        -- selected experiments
     dune exec bench/main.exe -- micro        -- microbenchmarks only
     dune exec bench/main.exe -- --quick ...  -- reduced horizons/seeds
     dune exec bench/main.exe -- --jobs 4 ... -- worker domains for sweeps
     dune exec bench/main.exe -- parallel     -- jobs=1 vs jobs=N comparison
                                                 (JSON to BENCH_parallel.json,
                                                  or --parallel-out PATH)
     dune exec bench/main.exe -- hotpath      -- allocation-free kernels and
                                                 warm-start vs seed replicas
                                                 (JSON to BENCH_hotpath.json,
                                                  or --hotpath-out PATH;
                                                  golden file override with
                                                  --golden PATH)
     dune exec bench/main.exe -- solver       -- packed Line_dp vs the
                                                 pre-packing replica and the
                                                 OPT cache, with byte-identity
                                                 verdicts (JSON to
                                                 BENCH_solver.json, or
                                                 --solver-out PATH)
     dune exec bench/main.exe -- network      -- CSR graphs + unboxed Dijkstra
                                                 + flat-metric PM optima vs the
                                                 pre-CSR replica, with
                                                 byte-identity verdicts (JSON
                                                 to BENCH_network.json, or
                                                 --network-out PATH)
     dune exec bench/main.exe -- serve        -- sharded session daemon under
                                                 an open-world schedule at
                                                 10k/100k live sessions plus a
                                                 1M-live streaming point, gated
                                                 on serve = engine,
                                                 jobs1 = jobsN and
                                                 stream = materialized
                                                 byte-identity (JSON to
                                                 BENCH_serve.json, or
                                                 --serve-out PATH)
     dune exec bench/main.exe -- multicore    -- the same serve schedule and
                                                 experiment sweep at
                                                 jobs=1/2/4/8, identity-gated
                                                 (JSON to BENCH_multicore.json,
                                                 or --multicore-out PATH)
     dune exec bench/main.exe -- fleet        -- packed fleet engine vs boxed
                                                 at k = 10/100/1000 and the
                                                 min-cost-flow relaxation OPT
                                                 vs brute force + the OPT
                                                 cache, gated on
                                                 packed = boxed,
                                                 flow = brute,
                                                 cached = cold and
                                                 jobs1 = jobsN byte-identity
                                                 (JSON to BENCH_fleet.json,
                                                 or --fleet-out PATH)

   Each experiment regenerates one reproduction target (a theorem of the
   paper; see DESIGN.md §4 and EXPERIMENTS.md) and prints its tables.
   The micro suite times the primitive operations with Bechamel. *)

module MS = Mobile_server

(* ------------------------------------------------------------------ *)
(* Microbenchmarks.                                                    *)

let micro_tests () =
  let open Bechamel in
  let rng = Prng.Stream.named ~name:"bench-micro" ~seed:1 in
  let points n =
    Array.init n (fun _ ->
        Geometry.Vec.make2
          (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
          (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0))
  in
  let pts16 = points 16 and pts128 = points 128 in
  let server = Geometry.Vec.zero 2 in
  let config = MS.Config.make ~d_factor:4.0 ~delta:0.5 () in
  let cluster_inst =
    Workloads.Clusters.generate ~dim:2 ~t:256
      (Prng.Stream.named ~name:"bench-inst" ~seed:2)
  in
  let line_inst =
    Workloads.Clusters.generate ~r_min:2 ~r_max:2 ~arena:10.0 ~dim:1 ~t:128
      (Prng.Stream.named ~name:"bench-line" ~seed:3)
  in
  [
    Test.make ~name:"geometric-median-16"
      (Staged.stage (fun () ->
           ignore (Geometry.Median.weiszfeld ~tie_break:server pts16)));
    Test.make ~name:"geometric-median-128"
      (Staged.stage (fun () ->
           ignore (Geometry.Median.weiszfeld ~tie_break:server pts128)));
    Test.make ~name:"mtc-decision-16"
      (Staged.stage (fun () ->
           ignore (MS.Mtc.target config ~server pts16)));
    Test.make ~name:"engine-run-T256"
      (Staged.stage (fun () ->
           ignore (MS.Engine.total_cost config MS.Mtc.algorithm cluster_inst)));
    Test.make ~name:"line-dp-T128"
      (Staged.stage (fun () ->
           ignore (Offline.Line_dp.optimum ~grid_per_m:32 config line_inst)));
    Test.make ~name:"convex-opt-T64"
      (Staged.stage
         (let small =
            Workloads.Clusters.generate ~dim:2 ~t:64
              (Prng.Stream.named ~name:"bench-cvx" ~seed:4)
          in
          fun () ->
            ignore
              (Offline.Convex_opt.optimum ~max_iter:20 ~sweeps:3 config small)));
    Test.make ~name:"thm2-generate"
      (Staged.stage (fun () ->
           ignore
             (Adversary.Thm2.generate ~cycles:2 ~dim:1 ~r_min:1 ~r_max:2
                config
                (Prng.Stream.named ~name:"bench-thm2" ~seed:5))));
    Test.make ~name:"workload-clusters-T256"
      (Staged.stage (fun () ->
           ignore
             (Workloads.Clusters.generate ~dim:2 ~t:256
                (Prng.Stream.named ~name:"bench-wl" ~seed:6))));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "\n=== MICRO: primitive-operation timings (Bechamel) ===\n";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances (Test.make_grouped
            ~name:"g" [ test ]) in
        let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name result acc ->
            let name =
              match String.index_opt name '/' with
              | Some i -> String.sub name (i + 1) (String.length name - i - 1)
              | None -> name
            in
            let ns =
              match Analyze.OLS.estimates result with
              | Some (t :: _) -> t
              | _ -> nan
            in
            [ name; Tables.cell (ns /. 1000.0); Tables.cell ns ] :: acc)
          analyzed [])
      (micro_tests ())
    |> List.concat
  in
  Tables.print
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "us/run"; "ns/run" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Hot-path benchmark: allocation-free kernels and the warm-started
   Weiszfeld iteration, priced against faithful replicas of the seed
   (allocating, cold-start) implementations, plus the byte-identity
   checks that prove the rewrite changed no science.  JSON lands in
   BENCH_hotpath.json (or --hotpath-out PATH). *)

(* Replicas of the pre-optimization kernels: the exact arithmetic of
   the seed code, materializing a difference vector per distance and
   restarting Weiszfeld from the centroid.  Kept here (not in lib/) so
   the comparison target cannot drift into production use. *)
module Seed_replica = struct
  module V = Geometry.Vec

  let dist u v = V.norm (V.sub u v)

  (* The seed's Vardi–Zhang loop for the general-position case (the
     1-D/collinear/degenerate branches are shared with the current code
     and are not on the hot path). *)
  let weiszfeld ?(eps = 1e-10) ?(max_iter = 200) points =
    let n = Array.length points in
    let d = V.dim points.(0) in
    if n = 1 then V.copy points.(0)
    else begin
      let origin = points.(0) in
      let spread =
        Array.fold_left (fun acc p -> Float.max acc (dist origin p)) 0.0 points
      in
      if spread < 1e-300 then V.copy origin
      else begin
        let y = ref (V.centroid points) in
        let tol = Float.max eps (eps *. spread) in
        let iter = ref 0 in
        let continue_ = ref true in
        while !continue_ && !iter < max_iter do
          incr iter;
          let anchor_eps = 1e-13 *. spread in
          let multiplicity = ref 0 in
          let inv_sum = ref 0.0 in
          let weighted = Array.make d 0.0 in
          let resultant = Array.make d 0.0 in
          Array.iter
            (fun p ->
              let dist = dist !y p in
              if dist <= anchor_eps then incr multiplicity
              else begin
                let w = 1.0 /. dist in
                inv_sum := !inv_sum +. w;
                for i = 0 to d - 1 do
                  weighted.(i) <- weighted.(i) +. (w *. p.(i));
                  resultant.(i) <- resultant.(i) +. (w *. (p.(i) -. !y.(i)))
                done
              end)
            points;
          if Float.equal !inv_sum 0.0 then continue_ := false
          else begin
            let t = Array.map (fun w -> w /. !inv_sum) weighted in
            let next =
              if !multiplicity = 0 then t
              else begin
                let r = V.norm resultant in
                let k = float_of_int !multiplicity in
                if r <= k then begin
                  continue_ := false;
                  V.copy !y
                end
                else
                  let beta = k /. r in
                  V.add (V.scale (1.0 -. beta) t) (V.scale beta !y)
              end
            in
            if dist next !y <= tol then continue_ := false;
            y := next
          end
        done;
        !y
      end
    end

  (* MtC with the replica median: times a full engine round on the seed
     kernels inside the current binary.  Degenerate rounds (fewer than
     three requests) share the current code in both runs, so the
     comparison isolates the hot path. *)
  let center ~server requests =
    if Array.length requests < 3 then Geometry.Median.center ~server requests
    else weiszfeld requests

  let algorithm = MS.Mtc.with_center ~name:"mtc-seed-replica" center
end

let time_per ~repeat f =
  (* Seconds per call, one warm-up call outside the clock. *)
  ignore (Sys.opaque_identity (f ()));
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeat do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int repeat

let run_hotpath ~quick ~out ~golden () =
  print_endline "\n=== HOTPATH: kernels, warm-started median, identity ===\n";
  let rng = Prng.Stream.named ~name:"bench-hotpath" ~seed:1 in
  let point () =
    Geometry.Vec.make2
      (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
      (Prng.Dist.uniform rng ~lo:(-10.0) ~hi:10.0)
  in
  (* --- kernel micro: fused vs allocating distance ----------------- *)
  let pairs = Array.init 512 (fun _ -> (point (), point ())) in
  let kernel_reps = if quick then 200 else 2000 in
  let sum_with dist () =
    Array.fold_left (fun acc (u, v) -> acc +. dist u v) 0.0 pairs
  in
  let per_call secs = secs /. float_of_int (Array.length pairs) *. 1e9 in
  let dist_alloc_ns =
    per_call (time_per ~repeat:kernel_reps (sum_with Seed_replica.dist))
  in
  let dist_fused_ns =
    per_call (time_per ~repeat:kernel_reps (sum_with Geometry.Vec.dist))
  in
  (* --- warm-started median on drifting request sets ---------------- *)
  (* MtC's situation each round: the same requests, each nudged a
     little, so the previous median is an excellent starting iterate.
     The set is a tight cluster plus far outliers — the heavy-tailed
     shape where the centroid (cold start) lands far from the median
     and the cold iteration pays for the trip every round. *)
  let rounds = if quick then 60 else 400 in
  let n_pts = 16 in
  let n_outliers = 4 in
  let sets =
    let current =
      Array.init n_pts (fun i ->
          if i < n_pts - n_outliers then
            Geometry.Vec.make2
              (Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.3)
              (Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.3)
          else
            Geometry.Vec.make2
              (Prng.Dist.uniform rng ~lo:40.0 ~hi:60.0)
              (Prng.Dist.uniform rng ~lo:(-60.0) ~hi:60.0))
    in
    Array.init rounds (fun _ ->
        let snapshot = Array.map Geometry.Vec.copy current in
        Array.iteri
          (fun i p ->
            current.(i) <-
              Geometry.Vec.make2
                (Geometry.Vec.x p +. Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.05)
                (Geometry.Vec.y p +. Prng.Dist.gaussian rng ~mu:0.0 ~sigma:0.05))
          current;
        snapshot)
  in
  let median_reps = if quick then 3 else 10 in
  let cold_total =
    time_per ~repeat:median_reps (fun () ->
        Array.iter (fun pts -> ignore (Geometry.Median.weiszfeld pts)) sets)
  in
  let warm_total =
    time_per ~repeat:median_reps (fun () ->
        let prev = ref None in
        Array.iter
          (fun pts ->
            let m = Geometry.Median.weiszfeld ?init:!prev pts in
            prev := Some m)
          sets)
  in
  let seed_total =
    time_per ~repeat:median_reps (fun () ->
        Array.iter (fun pts -> ignore (Seed_replica.weiszfeld pts)) sets)
  in
  let median_seed_us = seed_total /. float_of_int rounds *. 1e6 in
  let median_cold_us = cold_total /. float_of_int rounds *. 1e6 in
  let median_warm_us = warm_total /. float_of_int rounds *. 1e6 in
  (* The headline: the PR's total effect on the median hot path (seed
     kernels + cold start, versus fused kernels + warm start).  The
     same-kernel warm-vs-cold ratio is reported separately; Weiszfeld
     converges linearly, so a closer start saves only a log-factor of
     iterations and that ratio is necessarily modest. *)
  let warm_speedup = median_seed_us /. median_warm_us in
  let warm_vs_cold = median_cold_us /. median_warm_us in
  (* Warm and cold runs must land on the same median (within the
     iteration tolerance scaled by the point spread). *)
  let warm_max_dev =
    let prev = ref None in
    Array.fold_left
      (fun acc pts ->
        let cold = Geometry.Median.weiszfeld pts in
        let warm = Geometry.Median.weiszfeld ?init:!prev pts in
        prev := Some warm;
        Float.max acc (Geometry.Vec.dist cold warm))
      0.0 sets
  in
  (* --- full engine rounds: seed-replica kernels vs current ---------- *)
  let config = MS.Config.make ~d_factor:4.0 ~delta:0.5 () in
  let inst =
    Workloads.Clusters.generate ~dim:2 ~t:256
      (Prng.Stream.named ~name:"bench-inst" ~seed:2)
  in
  let t_len = MS.Instance.length inst in
  let engine_reps = if quick then 3 else 10 in
  let engine_seed_us =
    time_per ~repeat:engine_reps (fun () ->
        MS.Engine.total_cost config Seed_replica.algorithm inst)
    /. float_of_int t_len *. 1e6
  in
  let engine_opt_us =
    time_per ~repeat:engine_reps (fun () ->
        MS.Engine.total_cost config MS.Mtc.algorithm inst)
    /. float_of_int t_len *. 1e6
  in
  let warm_config = MS.Config.with_warm_start config true in
  let engine_warm_us =
    time_per ~repeat:engine_reps (fun () ->
        MS.Engine.total_cost warm_config MS.Mtc.algorithm inst)
    /. float_of_int t_len *. 1e6
  in
  let cost_seed = MS.Engine.total_cost config Seed_replica.algorithm inst in
  let cost_opt = MS.Engine.total_cost config MS.Mtc.algorithm inst in
  let cost_warm = MS.Engine.total_cost warm_config MS.Mtc.algorithm inst in
  let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b) in
  let engine_cost_rel = rel cost_seed cost_opt in
  let warm_cost_rel = rel cost_warm cost_opt in
  (* --- byte-identity: the science did not move --------------------- *)
  let golden_expected =
    match open_in golden with
    | exception Sys_error msg ->
      Printf.eprintf "hotpath: cannot read golden file %s (%s)\n" golden msg;
      None
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Some (really_input_string ic (in_channel_length ic)))
  in
  let identity_golden =
    match golden_expected with
    | None -> false
    | Some expected ->
      String.equal expected (Experiments.Golden.trajectory_string ())
  in
  (* Default-config catalog report, sequential vs parallel harness. *)
  let report_at jobs =
    Exec.set_jobs jobs;
    Experiments.Catalog.result_to_markdown
      (Experiments.Catalog.run ~quick:true "e1")
  in
  let saved_jobs = Exec.jobs () in
  let report_seq = report_at 1 in
  let report_par = report_at 2 in
  Exec.set_jobs saved_jobs;
  let identity_report = String.equal report_seq report_par in
  (* --- render ------------------------------------------------------ *)
  Tables.print
    ~title:"hot-path timings (lower is better)"
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "seed / cold"; "optimized / warm"; "speedup" ]
       [
         [ "Vec.dist (ns)"; Tables.cell dist_alloc_ns;
           Tables.cell dist_fused_ns;
           Tables.cell (dist_alloc_ns /. dist_fused_ns) ];
         [ Printf.sprintf "median, %d pts cold (us)" n_pts;
           Tables.cell median_seed_us; Tables.cell median_cold_us;
           Tables.cell (median_seed_us /. median_cold_us) ];
         [ Printf.sprintf "median, %d pts warm (us)" n_pts;
           Tables.cell median_seed_us; Tables.cell median_warm_us;
           Tables.cell warm_speedup ];
         [ "engine round (us)"; Tables.cell engine_seed_us;
           Tables.cell engine_opt_us;
           Tables.cell (engine_seed_us /. engine_opt_us) ];
         [ "engine round, warm (us)"; Tables.cell engine_seed_us;
           Tables.cell engine_warm_us;
           Tables.cell (engine_seed_us /. engine_warm_us) ];
       ]);
  Printf.printf "warm-vs-cold median deviation : %.3g (tolerance-level)\n"
    warm_max_dev;
  Printf.printf "engine cost drift seed->opt   : %.3g (must be 0)\n"
    engine_cost_rel;
  Printf.printf "engine cost drift warm        : %.3g (tolerance-level)\n"
    warm_cost_rel;
  Printf.printf "golden trajectory identical   : %b\n" identity_golden;
  Printf.printf "e1 report jobs1 = jobs2       : %b\n%!" identity_report;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-hotpath-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"kernel_dist_alloc_ns\": %.6g,\n" dist_alloc_ns);
  Buffer.add_string buf
    (Printf.sprintf "  \"kernel_dist_fused_ns\": %.6g,\n" dist_fused_ns);
  Buffer.add_string buf
    (Printf.sprintf "  \"kernel_dist_speedup\": %.6g,\n"
       (dist_alloc_ns /. dist_fused_ns));
  Buffer.add_string buf
    (Printf.sprintf "  \"median_seed_us\": %.6g,\n" median_seed_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_cold_us\": %.6g,\n" median_cold_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_us\": %.6g,\n" median_warm_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_speedup\": %.6g,\n" warm_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_vs_cold_same_kernel\": %.6g,\n"
       warm_vs_cold);
  Buffer.add_string buf
    (Printf.sprintf "  \"median_warm_max_deviation\": %.6g,\n" warm_max_dev);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_seed_us\": %.6g,\n" engine_seed_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_opt_us\": %.6g,\n" engine_opt_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_warm_us\": %.6g,\n" engine_warm_us);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_round_speedup\": %.6g,\n"
       (engine_seed_us /. engine_opt_us));
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_cost_rel_drift\": %.6g,\n" engine_cost_rel);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_warm_cost_rel_drift\": %.6g,\n" warm_cost_rel);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_golden_trajectory\": %b,\n" identity_golden);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_report_jobs1_vs_jobs2\": %b\n"
       identity_report);
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "hotpath report written to %s\n" out;
  if not (identity_golden && identity_report) then begin
    prerr_endline
      "FATAL: hot-path rewrite is not byte-identical to the baseline";
    exit 1
  end;
  if engine_cost_rel > 0.0 then begin
    prerr_endline
      "FATAL: seed-replica and optimized engine runs disagree on cost";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Offline-solver benchmark: the packed Line_dp core and the OPT memo
   cache, priced against a faithful replica of the pre-packing solver
   (per-round allocations, boxed request access), plus the identity
   checks — packed vs boxed, cached vs uncached, jobs=1 vs jobs=2 —
   that prove the speedups changed no science.  JSON lands in
   BENCH_solver.json (or --solver-out PATH). *)

(* Replica of the pre-packing Line_dp: identical arithmetic, but the
   service table, sorted-request scratch and deques are allocated fresh
   every round and requests are read through boxed vectors.  Kept here
   (not in lib/) so the comparison target cannot drift into production
   use. *)
module Line_dp_replica = struct
  module Config = MS.Config
  module Instance = MS.Instance
  module Variant = MS.Variant

  let service_on_grid grid requests =
    let g = Array.length grid in
    let out = Array.make g 0.0 in
    let r = Array.length requests in
    if r > 0 then begin
      let sorted = Array.map (fun v -> v.(0)) requests in
      Array.sort Float.compare sorted;
      let prefix = Array.make (r + 1) 0.0 in
      for i = 0 to r - 1 do
        prefix.(i + 1) <- prefix.(i) +. sorted.(i)
      done;
      let total = prefix.(r) in
      let j = ref 0 in
      for k = 0 to g - 1 do
        let x = grid.(k) in
        while !j < r && sorted.(!j) <= x do incr j done;
        let below = float_of_int !j and sum_below = prefix.(!j) in
        let above = float_of_int (r - !j)
        and sum_above = total -. prefix.(!j) in
        out.(k) <- (below *. x) -. sum_below +. (sum_above -. (above *. x))
      done
    end;
    out

  let window_min_left ~w key out_val out_idx =
    let g = Array.length key in
    let deque = Array.make g 0 in
    let head = ref 0 and tail = ref 0 in
    for k = 0 to g - 1 do
      while !head < !tail && deque.(!head) < k - w do incr head done;
      while !head < !tail && key.(deque.(!tail - 1)) >= key.(k) do
        decr tail
      done;
      deque.(!tail) <- k;
      incr tail;
      let j = deque.(!head) in
      out_val.(k) <- key.(j);
      out_idx.(k) <- j
    done

  let optimum ?(grid_per_m = 64) (config : Config.t) inst =
    if Instance.dim inst <> 1 then
      invalid_arg "Line_dp.solve: instance is not 1-dimensional";
    let t_len = Instance.length inst in
    if t_len = 0 then invalid_arg "Line_dp.solve: empty instance";
    let m = Config.offline_limit config in
    let d_factor = config.Config.d_factor in
    let start = inst.Instance.start.(0) in
    let lo = ref start and hi = ref start in
    Array.iter
      (Array.iter (fun v ->
           if v.(0) < !lo then lo := v.(0);
           if v.(0) > !hi then hi := v.(0)))
      inst.Instance.steps;
    let width = !hi -. !lo in
    let max_cells = 40_000_000 in
    let max_grid = Stdlib.max 64 (Stdlib.min 60_000 (max_cells / t_len)) in
    let pitch =
      let by_m = m /. float_of_int (Stdlib.min grid_per_m 126) in
      let by_width =
        if width > 0.0 then width /. float_of_int max_grid else by_m
      in
      Float.max by_m by_width
    in
    let k_lo = -(int_of_float (Float.ceil ((start -. !lo) /. pitch))) in
    let k_hi = int_of_float (Float.ceil ((!hi -. start) /. pitch)) in
    let g = k_hi - k_lo + 1 in
    let grid =
      Array.init g (fun i -> start +. (float_of_int (k_lo + i) *. pitch))
    in
    let start_idx = -k_lo in
    let w = int_of_float (Float.floor ((m /. pitch) +. 1e-9)) in
    if w < 1 then invalid_arg "Line_dp.solve: grid pitch exceeds m";
    let inf = infinity in
    let parents = Bytes.make (t_len * g) '\000' in
    let value = Array.make g inf in
    value.(start_idx) <- 0.0;
    let key = Array.make g 0.0 in
    let left_val = Array.make g 0.0 and left_idx = Array.make g 0 in
    let right_val = Array.make g 0.0 and right_idx = Array.make g 0 in
    let rev_val = Array.make g 0.0 and rev_idx = Array.make g 0 in
    let next = Array.make g 0.0 in
    let serve_first =
      Variant.equal config.Config.variant Variant.Serve_first
    in
    for t = 0 to t_len - 1 do
      let service = service_on_grid grid inst.Instance.steps.(t) in
      let base j =
        if serve_first then value.(j) +. service.(j) else value.(j)
      in
      for j = 0 to g - 1 do
        key.(j) <- base j -. (d_factor *. grid.(j))
      done;
      window_min_left ~w key left_val left_idx;
      for j = 0 to g - 1 do
        key.(j) <- base (g - 1 - j) +. (d_factor *. grid.(g - 1 - j))
      done;
      window_min_left ~w key rev_val rev_idx;
      for k = 0 to g - 1 do
        right_val.(k) <- rev_val.(g - 1 - k);
        right_idx.(k) <- g - 1 - rev_idx.(g - 1 - k)
      done;
      for k = 0 to g - 1 do
        let x = grid.(k) in
        let from_left = left_val.(k) +. (d_factor *. x) in
        let from_right = right_val.(k) -. (d_factor *. x) in
        let best_val, best_j =
          if from_left <= from_right then (from_left, left_idx.(k))
          else (from_right, right_idx.(k))
        in
        next.(k) <-
          (if Float.is_finite best_val then
             if serve_first then best_val else best_val +. service.(k)
           else inf);
        Bytes.set parents ((t * g) + k) (Char.chr (best_j - k + 128))
      done;
      Array.blit next 0 value 0 g
    done;
    let best_k = ref 0 in
    for k = 1 to g - 1 do
      if value.(k) < value.(!best_k) then best_k := k
    done;
    value.(!best_k)
end

let run_solver ~quick ~out () =
  print_endline "\n=== SOLVER: packed Line_dp, OPT cache, identity ===\n";
  let bit_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let config = MS.Config.make ~d_factor:4.0 ~delta:0.5 () in
  let line_gen ~t rng =
    Workloads.Clusters.generate ~r_min:2 ~r_max:2 ~arena:10.0 ~dim:1 ~t rng
  in
  (* --- cold single solve: replica vs packed core ------------------- *)
  let solve_t = if quick then 512 else 2000 in
  let inst =
    line_gen ~t:solve_t (Prng.Stream.named ~name:"bench-solver" ~seed:1)
  in
  let solve_reps = if quick then 5 else 15 in
  let seed_ms =
    time_per ~repeat:solve_reps (fun () -> Line_dp_replica.optimum config inst)
    *. 1e3
  in
  let packed_ms =
    time_per ~repeat:solve_reps (fun () ->
        Offline.Line_dp.optimum config inst)
    *. 1e3
  in
  let cold_speedup = seed_ms /. packed_ms in
  (* Identity: replica, boxed entry and packed core agree bit for bit
     across several instances. *)
  let identity_packed_vs_boxed =
    let ok = ref true in
    for seed = 1 to 8 do
      let inst =
        line_gen ~t:(if quick then 64 else 128)
          (Prng.Stream.named ~name:"bench-solver-id" ~seed)
      in
      let replica = Line_dp_replica.optimum config inst in
      let boxed = Offline.Line_dp.optimum config inst in
      let packed =
        Offline.Line_dp.optimum_packed config (MS.Instance.pack inst)
      in
      if not (bit_eq replica boxed && bit_eq boxed packed) then ok := false
    done;
    !ok
  in
  (* --- cached sweep: cold vs warm, jobs=1 vs jobs=2 ----------------- *)
  let sweep_seeds = if quick then 6 else 16 in
  let sweep_t = if quick then 128 else 256 in
  let sweep () =
    Experiments.Ratio.vs_line_dp ~seeds:sweep_seeds ~base_seed:11
      ~name:"bench-opt-cache" config MS.Mtc.algorithm (line_gen ~t:sweep_t)
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let saved_jobs = Exec.jobs () in
  Exec.set_jobs 1;
  Offline.Opt_cache.clear ();
  Offline.Opt_cache.reset_stats ();
  let cold_s, sweep_cold = timed sweep in
  let warm_s, sweep_warm = timed sweep in
  let warm_speedup = cold_s /. warm_s in
  (* Uncached pass: the cache bypassed entirely, same jobs count. *)
  Offline.Opt_cache.set_enabled false;
  let _, sweep_uncached = timed sweep in
  Offline.Opt_cache.set_enabled true;
  (* jobs=2 from a cold cache, then warm. *)
  Exec.set_jobs 2;
  Offline.Opt_cache.clear ();
  let _, sweep_j2_cold = timed sweep in
  let _, sweep_j2_warm = timed sweep in
  Exec.set_jobs saved_jobs;
  let ratios s = s.Experiments.Ratio.ratios in
  let all_bit_eq a b =
    Array.length a = Array.length b && Array.for_all2 bit_eq a b
  in
  let identity_cached_vs_uncached =
    all_bit_eq (ratios sweep_cold) (ratios sweep_warm)
    && all_bit_eq (ratios sweep_cold) (ratios sweep_uncached)
  in
  let identity_jobs1_vs_jobs2 =
    all_bit_eq (ratios sweep_cold) (ratios sweep_j2_cold)
    && all_bit_eq (ratios sweep_cold) (ratios sweep_j2_warm)
  in
  (* --- on-disk store round trip ------------------------------------ *)
  let disk_dir = Filename.concat "_build" ".msp-opt-cache" in
  let saved_dir = Offline.Opt_cache.disk_dir () in
  Offline.Opt_cache.set_disk_dir (Some disk_dir);
  let small =
    line_gen ~t:32 (Prng.Stream.named ~name:"bench-solver-disk" ~seed:7)
  in
  let packed_small = MS.Instance.pack small in
  Offline.Opt_cache.clear ();
  let from_solve = Offline.Opt_cache.line_dp config packed_small in
  Offline.Opt_cache.clear ();
  let before_disk = Offline.Opt_cache.stats () in
  let from_disk = Offline.Opt_cache.line_dp config packed_small in
  let after_disk = Offline.Opt_cache.stats () in
  Offline.Opt_cache.set_disk_dir saved_dir;
  let identity_disk_roundtrip =
    bit_eq from_solve from_disk
    && after_disk.Offline.Opt_cache.disk_hits
       > before_disk.Offline.Opt_cache.disk_hits
  in
  let stats = Offline.Opt_cache.stats () in
  (* --- render ------------------------------------------------------ *)
  Tables.print
    ~title:"offline-solver timings (lower is better)"
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "seed / cold"; "packed / warm"; "speedup" ]
       [
         [ Printf.sprintf "line-dp solve, T=%d (ms)" solve_t;
           Tables.cell seed_ms; Tables.cell packed_ms;
           Tables.cell cold_speedup ];
         [ Printf.sprintf "ratio sweep, %d seeds (s)" sweep_seeds;
           Tables.cell cold_s; Tables.cell warm_s;
           Tables.cell warm_speedup ];
       ]);
  Printf.printf "cache stats                    : %d hits, %d misses, %d disk\n"
    stats.Offline.Opt_cache.hits stats.Offline.Opt_cache.misses
    stats.Offline.Opt_cache.disk_hits;
  Printf.printf "packed = boxed = seed replica  : %b\n" identity_packed_vs_boxed;
  Printf.printf "cached = uncached              : %b\n"
    identity_cached_vs_uncached;
  Printf.printf "jobs1 = jobs2 (cold and warm)  : %b\n" identity_jobs1_vs_jobs2;
  Printf.printf "disk round trip                : %b\n%!"
    identity_disk_roundtrip;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-solver-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"line_dp_rounds\": %d,\n" solve_t);
  Buffer.add_string buf
    (Printf.sprintf "  \"line_dp_seed_ms\": %.6g,\n" seed_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"line_dp_packed_ms\": %.6g,\n" packed_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"line_dp_cold_speedup\": %.6g,\n" cold_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_seeds\": %d,\n" sweep_seeds);
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_cold_s\": %.6g,\n" cold_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_warm_s\": %.6g,\n" warm_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_warm_speedup\": %.6g,\n" warm_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_hits\": %d,\n" stats.Offline.Opt_cache.hits);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_misses\": %d,\n"
       stats.Offline.Opt_cache.misses);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_disk_hits\": %d,\n"
       stats.Offline.Opt_cache.disk_hits);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_packed_vs_boxed\": %b,\n"
       identity_packed_vs_boxed);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_cached_vs_uncached\": %b,\n"
       identity_cached_vs_uncached);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_jobs1_vs_jobs2\": %b,\n"
       identity_jobs1_vs_jobs2);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_disk_roundtrip\": %b\n"
       identity_disk_roundtrip);
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "solver report written to %s\n" out;
  if not (identity_packed_vs_boxed && identity_cached_vs_uncached
          && identity_jobs1_vs_jobs2 && identity_disk_roundtrip)
  then begin
    prerr_endline
      "FATAL: solver rewrite or cache is not byte-identical to the baseline";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Network benchmark: the CSR graph stack — unboxed Dijkstra into one
   flat metric table, lazy rows, and the flat-row Page Migration DP —
   priced against faithful replicas of the pre-CSR implementations
   (list adjacency, tuple-heap Dijkstra, per-pair distance calls in
   the DP), plus the identity checks that prove the rewrite changed no
   science.  JSON lands in BENCH_network.json (or --network-out). *)

(* Replicas of the pre-CSR graph/metric/DP code: the exact arithmetic
   and data structures of the seed network stack.  Kept here (not in
   lib/) so the comparison target cannot drift into production use. *)
module Network_replica = struct
  type graph = { n : int; adjacency : (int * float) list array }

  (* Rebuild the historical adjacency-list representation from the
     canonical edge list — cons per endpoint in edge order, exactly
     like the seed [Graph.of_edges]. *)
  let of_graph g =
    let n = Network.Graph.nodes g in
    let adjacency = Array.make n [] in
    List.iter
      (fun (u, v, len) ->
        adjacency.(u) <- (v, len) :: adjacency.(u);
        adjacency.(v) <- (u, len) :: adjacency.(v))
      (Network.Graph.edges g);
    { n; adjacency }

  (* The seed's binary heap on boxed (distance, node) pairs. *)
  module Heap = struct
    type t = {
      mutable data : (float * int) array;
      mutable size : int;
    }

    let create capacity =
      { data = Array.make (Stdlib.max 1 capacity) (0.0, 0); size = 0 }

    let swap h i j =
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(j);
      h.data.(j) <- tmp

    let rec sift_up h i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if fst h.data.(i) < fst h.data.(parent) then begin
          swap h i parent;
          sift_up h parent
        end
      end

    let rec sift_down h i =
      let left = (2 * i) + 1 and right = (2 * i) + 2 in
      let smallest = ref i in
      if left < h.size && fst h.data.(left) < fst h.data.(!smallest) then
        smallest := left;
      if right < h.size && fst h.data.(right) < fst h.data.(!smallest) then
        smallest := right;
      if !smallest <> i then begin
        swap h i !smallest;
        sift_down h !smallest
      end

    let push h entry =
      if h.size = Array.length h.data then begin
        let grown = Array.make (2 * h.size) (0.0, 0) in
        Array.blit h.data 0 grown 0 h.size;
        h.data <- grown
      end;
      h.data.(h.size) <- entry;
      h.size <- h.size + 1;
      sift_up h (h.size - 1)

    let pop h =
      if h.size = 0 then None
      else begin
        let top = h.data.(0) in
        h.size <- h.size - 1;
        if h.size > 0 then begin
          h.data.(0) <- h.data.(h.size);
          sift_down h 0
        end;
        Some top
      end
  end

  let single_source g s =
    let dist = Array.make g.n infinity in
    dist.(s) <- 0.0;
    let heap = Heap.create g.n in
    Heap.push heap (0.0, s);
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, len) ->
              let nd = d +. len in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Heap.push heap (nd, v)
              end)
            g.adjacency.(u);
        loop ()
    in
    loop ();
    dist

  type metric = { n : int; table : float array array }

  let all_pairs (g : graph) =
    { n = g.n; table = Array.init g.n (single_source g) }

  let distance m u v =
    if u < 0 || u >= m.n || v < 0 || v >= m.n then
      invalid_arg "distance: node out of range";
    m.table.(u).(v)

  (* The seed Pm_offline.solve: per-pair [distance] calls, service
     refolded per destination, sequential scan. *)
  let pm_solve metric ~d_factor (inst : Network.Pm_model.instance) =
    let t_len = Array.length inst.Network.Pm_model.rounds in
    let n = metric.n in
    let value = Array.make n infinity in
    value.(inst.Network.Pm_model.start) <- 0.0;
    let parents = Array.make_matrix t_len n 0 in
    let next = Array.make n 0.0 in
    for t = 0 to t_len - 1 do
      let requests = inst.Network.Pm_model.rounds.(t) in
      for x = 0 to n - 1 do
        let service =
          Array.fold_left
            (fun acc v -> acc +. distance metric x v)
            0.0 requests
        in
        let best = ref infinity and best_y = ref 0 in
        for y = 0 to n - 1 do
          if Float.is_finite value.(y) then begin
            let c = value.(y) +. (d_factor *. distance metric y x) in
            if c < !best then begin
              best := c;
              best_y := y
            end
          end
        done;
        next.(x) <- !best +. service;
        parents.(t).(x) <- !best_y
      done;
      Array.blit next 0 value 0 n
    done;
    let best_x = ref 0 in
    for x = 1 to n - 1 do
      if value.(x) < value.(!best_x) then best_x := x
    done;
    let positions = Array.make t_len 0 in
    let x = ref !best_x in
    for t = t_len - 1 downto 0 do
      positions.(t) <- !x;
      x := parents.(t).(!x)
    done;
    (value.(!best_x), positions)
end

let run_network ~quick ~out () =
  print_endline "\n=== NETWORK: CSR graphs, unboxed Dijkstra, PM optima ===\n";
  let bit_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let n = if quick then 120 else 400 in
  let t_len = if quick then 64 else 256 in
  let d = 4.0 in
  let rng = Prng.Stream.named ~name:"bench-network" ~seed:1 in
  let graph, _layout = Network.Graph.random_geometric ~n rng in
  let replica = Network_replica.of_graph graph in
  let edge_count = List.length (Network.Graph.edges graph) in
  (* Requests: a handful of nodes per round, the shape that exercises
     both the service fold and the migration scan. *)
  let inst =
    Network.Pm_model.make_instance graph ~start:0
      (Array.init t_len (fun _ ->
           Array.init 4 (fun _ -> Prng.Xoshiro.next_below rng n)))
  in
  (* --- cold all-pairs construction --------------------------------- *)
  let ap_reps = if quick then 3 else 10 in
  let ap_replica_ms =
    time_per ~repeat:ap_reps (fun () -> Network_replica.all_pairs replica)
    *. 1e3
  in
  let ap_csr_ms =
    time_per ~repeat:ap_reps (fun () -> Network.Dijkstra.all_pairs graph)
    *. 1e3
  in
  let ap_speedup = ap_replica_ms /. ap_csr_ms in
  let rmetric = Network_replica.all_pairs replica in
  let metric = Network.Dijkstra.all_pairs graph in
  (* --- per-query distance ------------------------------------------ *)
  let queries = if quick then 20_000 else 100_000 in
  let qu = Array.init queries (fun _ -> Prng.Xoshiro.next_below rng n) in
  let qv = Array.init queries (fun _ -> Prng.Xoshiro.next_below rng n) in
  let query_reps = if quick then 20 else 50 in
  let sum_queries dist =
    let acc = ref 0.0 in
    for i = 0 to queries - 1 do
      acc := !acc +. dist qu.(i) qv.(i)
    done;
    !acc
  in
  let per_query secs = secs /. float_of_int queries *. 1e9 in
  let query_replica_ns =
    per_query
      (time_per ~repeat:query_reps (fun () ->
           sum_queries (Network_replica.distance rmetric)))
  in
  let query_csr_ns =
    per_query
      (time_per ~repeat:query_reps (fun () ->
           sum_queries (Network.Dijkstra.distance metric)))
  in
  (* --- offline DP solve -------------------------------------------- *)
  let dp_reps = if quick then 2 else 3 in
  let dp_replica_ms =
    time_per ~repeat:dp_reps (fun () ->
        Network_replica.pm_solve rmetric ~d_factor:d inst)
    *. 1e3
  in
  let dp_csr_ms =
    time_per ~repeat:dp_reps (fun () ->
        Network.Pm_offline.solve metric ~d_factor:d inst)
    *. 1e3
  in
  let dp_speedup = dp_replica_ms /. dp_csr_ms in
  (* --- identity: the science did not move --------------------------- *)
  let flat = Network.Dijkstra.dense_table metric in
  let identity_allpairs =
    let ok = ref true in
    for u = 0 to n - 1 do
      let row = rmetric.Network_replica.table.(u) in
      for v = 0 to n - 1 do
        if not (bit_eq row.(v) (Geometry.Fbuf.get flat ((u * n) + v))) then
          ok := false
      done
    done;
    !ok
  in
  (* Lazy rows, with a capacity forcing evictions, must reproduce the
     dense table bit for bit. *)
  let identity_lazy =
    let lazym = Network.Dijkstra.lazy_metric ~capacity:32 graph in
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if
          not
            (bit_eq
               (Network.Dijkstra.distance lazym u v)
               (Geometry.Fbuf.get flat ((u * n) + v)))
        then ok := false
      done
    done;
    !ok
  in
  let replica_cost, replica_positions =
    Network_replica.pm_solve rmetric ~d_factor:d inst
  in
  let sol = Network.Pm_offline.solve metric ~d_factor:d inst in
  let identity_dp =
    bit_eq replica_cost sol.Network.Pm_offline.cost
    && replica_positions = sol.Network.Pm_offline.positions
  in
  (* Cached optimum: cold miss, warm hit, both equal to the direct
     solve bit for bit. *)
  Offline.Opt_cache.reset_stats ();
  let cache_t0 = Unix.gettimeofday () in
  let cached_cold =
    Network.Pm_offline.optimum_cached ~graph metric ~d_factor:d inst
  in
  let cache_cold_ms = (Unix.gettimeofday () -. cache_t0) *. 1e3 in
  let cache_t1 = Unix.gettimeofday () in
  let cached_warm =
    Network.Pm_offline.optimum_cached ~graph metric ~d_factor:d inst
  in
  let cache_warm_ms = (Unix.gettimeofday () -. cache_t1) *. 1e3 in
  let cache_stats = Offline.Opt_cache.stats () in
  let identity_cached =
    bit_eq cached_cold sol.Network.Pm_offline.cost
    && bit_eq cached_warm sol.Network.Pm_offline.cost
    && cache_stats.Offline.Opt_cache.hits > 0
  in
  (* jobs=2 must reproduce the jobs=1 table and DP bit for bit. *)
  let saved_jobs = Exec.jobs () in
  Exec.set_jobs 2;
  let metric_j2 = Network.Dijkstra.all_pairs graph in
  let sol_j2 = Network.Pm_offline.solve metric_j2 ~d_factor:d inst in
  Exec.set_jobs saved_jobs;
  let identity_jobs =
    let flat_j2 = Network.Dijkstra.dense_table metric_j2 in
    let ok =
      ref (Geometry.Fbuf.length flat_j2 = Geometry.Fbuf.length flat)
    in
    if !ok then
      for i = 0 to Geometry.Fbuf.length flat - 1 do
        if not (bit_eq (Geometry.Fbuf.get flat i) (Geometry.Fbuf.get flat_j2 i))
        then ok := false
      done;
    !ok
    && bit_eq sol.Network.Pm_offline.cost sol_j2.Network.Pm_offline.cost
    && sol.Network.Pm_offline.positions = sol_j2.Network.Pm_offline.positions
  in
  (* --- render ------------------------------------------------------ *)
  Tables.print
    ~title:"network timings (lower is better)"
    (Tables.create
       ~aligns:[ Tables.Left; Tables.Right; Tables.Right; Tables.Right ]
       ~header:[ "operation"; "replica"; "CSR"; "speedup" ]
       [
         [ Printf.sprintf "all-pairs, n=%d (ms)" n;
           Tables.cell ap_replica_ms; Tables.cell ap_csr_ms;
           Tables.cell ap_speedup ];
         [ "distance query (ns)"; Tables.cell query_replica_ns;
           Tables.cell query_csr_ns;
           Tables.cell (query_replica_ns /. query_csr_ns) ];
         [ Printf.sprintf "PM offline DP, T=%d (ms)" t_len;
           Tables.cell dp_replica_ms; Tables.cell dp_csr_ms;
           Tables.cell dp_speedup ];
         [ "cached PM optimum (ms)"; Tables.cell cache_cold_ms;
           Tables.cell cache_warm_ms;
           Tables.cell (cache_cold_ms /. Float.max 1e-6 cache_warm_ms) ];
       ]);
  Printf.printf "replica = CSR (all-pairs)     : %b\n" identity_allpairs;
  Printf.printf "lazy = dense                  : %b\n" identity_lazy;
  Printf.printf "replica = CSR (DP solve)      : %b\n" identity_dp;
  Printf.printf "cached = uncached             : %b\n" identity_cached;
  Printf.printf "jobs1 = jobs2                 : %b\n%!" identity_jobs;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-network-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf (Printf.sprintf "  \"nodes\": %d,\n" n);
  Buffer.add_string buf (Printf.sprintf "  \"edges\": %d,\n" edge_count);
  Buffer.add_string buf (Printf.sprintf "  \"rounds\": %d,\n" t_len);
  Buffer.add_string buf
    (Printf.sprintf "  \"allpairs_replica_ms\": %.6g,\n" ap_replica_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"allpairs_csr_ms\": %.6g,\n" ap_csr_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"allpairs_speedup\": %.6g,\n" ap_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"query_replica_ns\": %.6g,\n" query_replica_ns);
  Buffer.add_string buf
    (Printf.sprintf "  \"query_csr_ns\": %.6g,\n" query_csr_ns);
  Buffer.add_string buf
    (Printf.sprintf "  \"query_speedup\": %.6g,\n"
       (query_replica_ns /. query_csr_ns));
  Buffer.add_string buf
    (Printf.sprintf "  \"pm_dp_replica_ms\": %.6g,\n" dp_replica_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"pm_dp_csr_ms\": %.6g,\n" dp_csr_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"pm_dp_speedup\": %.6g,\n" dp_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"pm_cache_cold_ms\": %.6g,\n" cache_cold_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"pm_cache_warm_ms\": %.6g,\n" cache_warm_ms);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_allpairs_replica_vs_csr\": %b,\n"
       identity_allpairs);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_lazy_vs_dense\": %b,\n" identity_lazy);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_dp_replica_vs_csr\": %b,\n" identity_dp);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_cached_vs_uncached\": %b,\n" identity_cached);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_jobs1_vs_jobs2\": %b\n" identity_jobs);
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "network report written to %s\n" out;
  if
    not
      (identity_allpairs && identity_lazy && identity_dp && identity_cached
       && identity_jobs)
  then begin
    prerr_endline
      "FATAL: network rewrite is not byte-identical to the baseline";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serve: the sharded session daemon under an open-world schedule, at
   two live-session scales.  Throughput and p99 step latency are
   reported, but the numbers only count if the identity wall holds:
   every served trajectory byte-identical to an in-process Engine.run
   replay, and the jobs=1 reply stream byte-identical to jobs=N. *)

type serve_row = {
  sr_mode : string;  (* "materialized" | "streaming" *)
  sr_scale : int;
  sr_ticks : int;
  sr_fingerprint : string;  (* empty for streaming-only points *)
  sr_peak : int;
  sr_sessions : int;
  sr_steps : int;
  sr_elapsed : float;
  sr_sps : float;
  sr_p99_service_ms : float;
  sr_p99_sojourn_ms : float;
  sr_id_engine : bool;
  sr_id_jobs : bool;
  sr_id_stream : bool option;
      (* streaming twin of a materialized scale: reply digests equal *)
}

let p99_ms a =
  if Array.length a = 0 then 0.0 else 1e3 *. Stats.Quantile.quantile a 0.99

let run_serve ~quick ~out () =
  let jobs = max 2 (Exec.jobs ()) in
  Printf.printf "\n=== SERVE: sharded session daemon, jobs=%d ===\n\n" jobs;
  let config = MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta:0.5 () in
  let dim = 2 in
  let shards = 8 in
  let ticks = 24 in
  let lifetime = 16.0 in
  let scales = if quick then [ 500; 2_000 ] else [ 10_000; 100_000 ] in
  (* The streaming engine's scale point: sessions held for the whole
     (short) horizon, so the daemon sustains [stream_scale] live
     sessions — 1M in the full run — which only fits because nothing
     is O(total steps): the schedule streams from its spec, the daemon
     skips journaling and the driver keeps one digest per session. *)
  let stream_scale = if quick then 5_000 else 1_000_000 in
  let stream_ticks = 4 in
  let spec_at ~scale ~ticks ~lifetime =
    Workloads.Open_world.spec
      ~arrival_rate:(float_of_int scale /. lifetime)
      ~mean_lifetime:lifetime ~initial:scale ~dim ~seed:(41_000 + scale)
      ~ticks ()
  in
  let serve_mat schedule ~jobs ~timed =
    let daemon = Serve.Daemon.create ~shards ~jobs ~config () in
    Fun.protect
      ~finally:(fun () -> Serve.Daemon.shutdown daemon)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let report =
          if timed then Serve.Driver.run ~now:Unix.gettimeofday daemon schedule
          else Serve.Driver.run daemon schedule
        in
        (report, Unix.gettimeofday () -. t0))
  in
  let serve_stream spec ~jobs ~timed =
    let daemon = Serve.Daemon.create ~shards ~jobs ~journal:false ~config () in
    Fun.protect
      ~finally:(fun () -> Serve.Daemon.shutdown daemon)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let report =
          if timed then
            Serve.Driver.run_stream ~now:Unix.gettimeofday daemon spec
          else Serve.Driver.run_stream daemon spec
        in
        (report, Unix.gettimeofday () -. t0))
  in
  let print_row (r : serve_row) =
    Printf.printf
      "%-12s %8d live target: peak %8d, %9d steps, %10.0f steps/s, p99 \
       service %8.4f ms, p99 sojourn %9.3f ms, serve=engine %b, jobs1=jobs%d \
       %b%s\n%!"
      r.sr_mode r.sr_scale r.sr_peak r.sr_steps r.sr_sps r.sr_p99_service_ms
      r.sr_p99_sojourn_ms r.sr_id_engine jobs r.sr_id_jobs
      (match r.sr_id_stream with
       | None -> ""
       | Some b -> Printf.sprintf ", stream=materialized %b" b)
  in
  let row_of ~mode ~scale ~ticks ~fingerprint ~id_stream (report_n, elapsed)
      report_1 =
    let identity_engine =
      Serve.Driver.ok report_n && Serve.Driver.ok report_1
    in
    let identity_jobs =
      String.equal report_n.Serve.Driver.reply_digest
        report_1.Serve.Driver.reply_digest
    in
    List.iter
      (fun m -> Printf.printf "  mismatch: %s\n" m)
      (report_n.Serve.Driver.mismatches @ report_1.Serve.Driver.mismatches);
    let row =
      {
        sr_mode = mode;
        sr_scale = scale;
        sr_ticks = ticks;
        sr_fingerprint = fingerprint;
        sr_peak = report_n.Serve.Driver.peak_live;
        sr_sessions = report_n.Serve.Driver.sessions;
        sr_steps = report_n.Serve.Driver.steps;
        sr_elapsed = elapsed;
        sr_sps = float_of_int report_n.Serve.Driver.steps /. elapsed;
        sr_p99_service_ms = p99_ms report_n.Serve.Driver.service_latencies;
        sr_p99_sojourn_ms = p99_ms report_n.Serve.Driver.latencies;
        sr_id_engine = identity_engine;
        sr_id_jobs = identity_jobs;
        sr_id_stream = id_stream;
      }
    in
    print_row row;
    row
  in
  let measure scale =
    (* initial = scale with arrivals balancing departures keeps the
       live count pinned near [scale] for the whole horizon. *)
    let spec = spec_at ~scale ~ticks ~lifetime in
    let schedule = Workloads.Open_world.of_spec spec in
    let timed_n = serve_mat schedule ~jobs ~timed:true in
    let report_1, _ = serve_mat schedule ~jobs:1 ~timed:false in
    (* Stream ≡ materialized gate at the smallest scale: the streaming
       driver must submit byte-identical frames in the same order, so
       the chained reply digests must match. *)
    let id_stream =
      if scale = List.hd scales then begin
        let stream_report, _ = serve_stream spec ~jobs ~timed:false in
        Some
          (String.equal stream_report.Serve.Driver.reply_digest
             (fst timed_n).Serve.Driver.reply_digest
          && Serve.Driver.ok stream_report)
      end
      else None
    in
    row_of ~mode:"materialized" ~scale ~ticks
      ~fingerprint:(Workloads.Open_world.fingerprint schedule)
      ~id_stream timed_n report_1
  in
  let measure_stream () =
    (* Long lifetimes pin every initial session for the whole horizon;
       the plans are never materialized, so the fingerprint is elided
       (it would cost the very allocation the point exists to avoid). *)
    let spec = spec_at ~scale:stream_scale ~ticks:stream_ticks ~lifetime:1e6 in
    let timed_n = serve_stream spec ~jobs ~timed:true in
    let report_1, _ = serve_stream spec ~jobs:1 ~timed:false in
    row_of ~mode:"streaming" ~scale:stream_scale ~ticks:stream_ticks
      ~fingerprint:"" ~id_stream:None timed_n report_1
  in
  let mat_rows = List.map measure scales in
  let rows = mat_rows @ [ measure_stream () ] in
  Tables.print
    ~title:"serve daemon (sustained, identity-gated)"
    (Tables.create
       ~aligns:
         [ Tables.Left; Tables.Right; Tables.Right; Tables.Right;
           Tables.Right; Tables.Right ]
       ~header:
         [ "mode"; "live sessions"; "steps"; "steps/sec"; "p99 svc (ms)";
           "p99 sojourn (ms)" ]
       (List.map
          (fun r ->
            [ r.sr_mode;
              Printf.sprintf "%d" r.sr_scale;
              Printf.sprintf "%d" r.sr_steps;
              Tables.cell r.sr_sps;
              Tables.cell r.sr_p99_service_ms;
              Tables.cell r.sr_p99_sojourn_ms ])
          rows));
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-serve-v2\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"shards\": %d,\n" shards);
  Buffer.add_string buf (Printf.sprintf "  \"dim\": %d,\n" dim);
  Buffer.add_string buf "  \"scales\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"live_target\": %d, \"ticks\": %d, \
            \"peak_live\": %d, \"sessions\": %d, \"steps\": %d, \
            \"elapsed_s\": %.6g, \"steps_per_sec\": %.6g, \
            \"p99_service_latency_ms\": %.6g, \"p99_sojourn_latency_ms\": \
            %.6g, \"schedule_fingerprint\": %S, \
            \"identity_serve_vs_engine\": %b, \"identity_jobs1_vs_jobsN\": \
            %b%s}%s\n"
           r.sr_mode r.sr_scale r.sr_ticks r.sr_peak r.sr_sessions r.sr_steps
           r.sr_elapsed r.sr_sps r.sr_p99_service_ms r.sr_p99_sojourn_ms
           r.sr_fingerprint r.sr_id_engine r.sr_id_jobs
           (match r.sr_id_stream with
            | None -> ""
            | Some b ->
              Printf.sprintf ", \"identity_stream_vs_materialized\": %b" b)
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "serve report written to %s\n" out;
  if
    not
      (List.for_all
         (fun r ->
           r.sr_id_engine && r.sr_id_jobs
           && (match r.sr_id_stream with None -> true | Some b -> b))
         rows)
  then begin
    prerr_endline
      "FATAL: serve daemon output is not byte-identical to the in-process \
       engine (or jobs=1 differs from jobs=N, or streaming differs from \
       materialized)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Multicore matrix: the same fixed work at jobs = 1/2/4/8 — a serve
   schedule (shard-drain parallelism) and one Exec-pooled experiment
   sweep — recording wall clock per cell and gating on byte-identical
   output across the whole matrix (the Exec determinism contract).
   Speedups are honest for whatever box runs this: on a single
   hardware thread they hover around 1x. *)

let multicore_jobs = [ 1; 2; 4; 8 ]

let run_multicore ~quick ~out () =
  Printf.printf "\n=== MULTICORE: jobs=1/2/4/8 matrix ===\n\n";
  let config = MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta:0.5 () in
  let scale = if quick then 1_000 else 20_000 in
  let schedule =
    Workloads.Open_world.generate ~arrival_rate:(float_of_int scale /. 16.0)
      ~mean_lifetime:16.0 ~initial:scale ~dim:2 ~seed:(43_000 + scale)
      ~ticks:12 ()
  in
  let experiment = "e4" in
  let cells =
    List.map
      (fun jobs ->
        let daemon = Serve.Daemon.create ~shards:8 ~jobs ~config () in
        let serve_s, digest =
          Fun.protect
            ~finally:(fun () -> Serve.Daemon.shutdown daemon)
            (fun () ->
              let t0 = Unix.gettimeofday () in
              let report = Serve.Driver.run daemon schedule in
              (Unix.gettimeofday () -. t0, report.Serve.Driver.reply_digest))
        in
        Exec.set_jobs jobs;
        (* Every cell pays cold solves — otherwise the first cell warms
           the OPT cache and later cells report a phantom speedup. *)
        Offline.Opt_cache.clear ();
        let t0 = Unix.gettimeofday () in
        let result = Experiments.Catalog.run ~quick experiment in
        let exp_s = Unix.gettimeofday () -. t0 in
        let exp_report = Experiments.Catalog.result_to_markdown result in
        Printf.printf
          "jobs=%d   serve %6.2fs   %s %6.2fs\n%!" jobs serve_s experiment
          exp_s;
        (jobs, serve_s, digest, exp_s, exp_report))
      multicore_jobs
  in
  Exec.set_jobs (Exec.default_jobs ());
  let _, base_serve, base_digest, base_exp, base_report = List.hd cells in
  let identical =
    List.for_all
      (fun (_, _, digest, _, report) ->
        String.equal digest base_digest && String.equal report base_report)
      cells
  in
  Tables.print ~title:"multicore scaling (identity-gated)"
    (Tables.create
       ~aligns:[ Tables.Right; Tables.Right; Tables.Right; Tables.Right;
                 Tables.Right ]
       ~header:[ "jobs"; "serve (s)"; "speedup"; experiment ^ " (s)";
                 "speedup" ]
       (List.map
          (fun (jobs, serve_s, _, exp_s, _) ->
            [ Printf.sprintf "%d" jobs;
              Tables.cell serve_s;
              Tables.cell (if serve_s > 0.0 then base_serve /. serve_s else 1.0);
              Tables.cell exp_s;
              Tables.cell (if exp_s > 0.0 then base_exp /. exp_s else 1.0) ])
          cells));
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-multicore-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"serve_live_target\": %d,\n" scale);
  Buffer.add_string buf (Printf.sprintf "  \"experiment\": %S,\n" experiment);
  Buffer.add_string buf
    (Printf.sprintf "  \"identical_output\": %b,\n" identical);
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i (jobs, serve_s, digest, exp_s, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"jobs\": %d, \"serve_seconds\": %.6g, \"serve_speedup\": \
            %.6g, \"experiment_seconds\": %.6g, \"experiment_speedup\": \
            %.6g, \"serve_reply_digest\": %S}%s\n"
           jobs serve_s
           (if serve_s > 0.0 then base_serve /. serve_s else 1.0)
           exp_s
           (if exp_s > 0.0 then base_exp /. exp_s else 1.0)
           digest
           (if i < List.length cells - 1 then "," else "")))
    cells;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "multicore report written to %s\n" out;
  if not identical then begin
    prerr_endline "FATAL: multicore output differs across jobs counts";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel scaling: run a few multi-seed experiments at jobs=1 and at
   the requested jobs count, check the reports are byte-identical (the
   Exec determinism contract), and record wall-clock per experiment. *)

let parallel_sample = [ "e4"; "e9"; "t1" ]

let run_parallel ~quick ~jobs ~out () =
  Printf.printf "\n=== PARALLEL: jobs=1 vs jobs=%d scaling check ===\n\n" jobs;
  let time_at ~jobs id =
    Exec.set_jobs jobs;
    let t0 = Unix.gettimeofday () in
    let result = Experiments.Catalog.run ~quick id in
    (Unix.gettimeofday () -. t0, Experiments.Catalog.result_to_markdown result)
  in
  let rows =
    List.map
      (fun id ->
        let s1, report1 = time_at ~jobs:1 id in
        let sn, reportn = time_at ~jobs id in
        let identical = String.equal report1 reportn in
        let speedup = if sn > 0.0 then s1 /. sn else 1.0 in
        Printf.printf
          "%-4s jobs=1 %6.2fs   jobs=%d %6.2fs   speedup %.2fx   identical %b\n%!"
          id s1 jobs sn speedup identical;
        (id, s1, sn, speedup, identical))
      parallel_sample
  in
  Exec.set_jobs jobs;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-parallel-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"default_jobs\": %d,\n" (Exec.default_jobs ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i (id, s1, sn, speedup, identical) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"seconds_jobs1\": %.6g, \"seconds_jobsN\": \
            %.6g, \"speedup\": %.6g, \"identical_output\": %b}%s\n"
           id s1 sn speedup identical
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "parallel scaling report written to %s\n" out;
  if not (List.for_all (fun (_, _, _, _, identical) -> identical) rows) then begin
    prerr_endline "FATAL: parallel output differs from sequential output";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fleet benchmark: the packed fleet engine vs the boxed engine, the
   min-cost-flow relaxation optimum vs brute-force enumeration and the
   OPT cache, and the jobs=1 vs jobs=N sweep — all gated on bitwise
   identity.  JSON lands in BENCH_fleet.json (or --fleet-out). *)

let run_fleet ~quick ~out () =
  print_endline "\n=== FLEET: packed engine, flow OPT, identity ===\n";
  let bit_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let all_bit_eq a b =
    Array.length a = Array.length b && Array.for_all2 bit_eq a b
  in
  let config = MS.Config.make ~d_factor:2.0 ~move_limit:1.0 ~delta:0.5 () in
  let gen ?hotspots ?r_min ?r_max ~t seed =
    Workloads.Hotspots.generate ?hotspots ?r_min ?r_max ~dim:2 ~t
      (Prng.Stream.named ~name:"bench-fleet" ~seed)
  in
  let fleet_bits_eq boxed packed =
    let unpacked = Multi.Fleet.unpack packed in
    Array.length boxed = Array.length unpacked
    && Array.for_all2 (fun a b -> all_bit_eq a b) boxed unpacked
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* --- packed vs boxed engine rounds at k in {10, 100, 1000} -------- *)
  let engine_t = if quick then 40 else 150 in
  let engine_reps = if quick then 2 else 4 in
  let inst = gen ~t:engine_t 1 in
  let packed_inst = MS.Instance.pack inst in
  let engine_rows =
    List.map
      (fun k ->
        let boxed_ms =
          time_per ~repeat:engine_reps (fun () ->
              Multi.Fleet_engine.total_cost ~k config Multi.Fleet_mtc.independent
                inst)
          *. 1e3
        in
        let packed_ms =
          time_per ~repeat:engine_reps (fun () ->
              Multi.Fleet_engine.total_cost_packed ~k config
                Multi.Fleet_mtc.independent_packed packed_inst)
          *. 1e3
        in
        let br =
          Multi.Fleet_engine.run ~k config Multi.Fleet_mtc.independent inst
        in
        let pr =
          Multi.Fleet_engine.run_packed ~k config
            Multi.Fleet_mtc.independent_packed packed_inst
        in
        let bc = br.Multi.Fleet_engine.cost
        and pc = pr.Multi.Fleet_engine.p_cost in
        let boxed_final =
          br.Multi.Fleet_engine.fleets.(Array.length br.Multi.Fleet_engine.fleets - 1)
        in
        let identical =
          bit_eq bc.MS.Cost.move pc.MS.Cost.move
          && bit_eq bc.MS.Cost.service pc.MS.Cost.service
          && fleet_bits_eq boxed_final pr.Multi.Fleet_engine.final
        in
        (k, boxed_ms, packed_ms, boxed_ms /. packed_ms, identical))
      [ 10; 100; 1000 ]
  in
  let identity_packed_vs_boxed =
    List.for_all (fun (_, _, _, _, ok) -> ok) engine_rows
  in
  (* --- flow OPT timings at k in {10, 100, 1000} --------------------- *)
  let flow_points =
    if quick then [ (10, 20); (100, 40); (1000, 67) ]
    else [ (10, 80); (100, 167); (1000, 400) ]
  in
  let d_factor = config.MS.Config.d_factor in
  let flow_rows =
    List.map
      (fun (k, t) ->
        let inst = gen ~r_min:1 ~r_max:1 ~t (2000 + k) in
        let requests = Array.concat (Array.to_list inst.MS.Instance.steps) in
        let n = Array.length requests in
        let flow_ms, (opt, _) =
          timed (fun () ->
              Multi.Fleet_flow.solve ~d_factor ~start:inst.MS.Instance.start
                ~requests ~k)
        in
        (k, n, flow_ms *. 1e3, opt))
      flow_points
  in
  (* --- flow vs brute at enumerable sizes ---------------------------- *)
  let brute_rows =
    List.map
      (fun (k, t, seed) ->
        let inst = gen ~hotspots:1 ~r_min:1 ~r_max:1 ~t seed in
        let n = t in
        let brute_ms, brute =
          timed (fun () -> Multi.Fleet_offline.optimum_brute ~k config inst)
        in
        Offline.Opt_cache.clear ();
        let flow_ms, flow =
          timed (fun () -> Multi.Fleet_offline.optimum_flow ~k config inst)
        in
        ( k, n, brute_ms *. 1e3, flow_ms *. 1e3, brute_ms /. flow_ms,
          bit_eq brute flow ))
      (if quick then [ (2, 10, 3); (3, 8, 4) ]
       else [ (2, 18, 3); (2, 14, 5); (3, 12, 4); (3, 10, 6) ])
  in
  let identity_flow_vs_brute =
    List.for_all (fun (_, _, _, _, _, ok) -> ok) brute_rows
  in
  (* --- OPT cache: cold vs warm vs bypassed -------------------------- *)
  let cache_inst = gen ~r_min:1 ~r_max:1 ~t:(if quick then 40 else 120) 77 in
  Offline.Opt_cache.set_enabled true;
  Offline.Opt_cache.clear ();
  Offline.Opt_cache.reset_stats ();
  let cache_k = 25 in
  let cold_s, opt_cold =
    timed (fun () -> Multi.Fleet_offline.optimum_flow ~k:cache_k config cache_inst)
  in
  let warm_s, opt_warm =
    timed (fun () -> Multi.Fleet_offline.optimum_flow ~k:cache_k config cache_inst)
  in
  Offline.Opt_cache.set_enabled false;
  let _, opt_uncached =
    timed (fun () -> Multi.Fleet_offline.optimum_flow ~k:cache_k config cache_inst)
  in
  Offline.Opt_cache.set_enabled true;
  let identity_cached_vs_uncached =
    bit_eq opt_cold opt_warm && bit_eq opt_cold opt_uncached
  in
  let cache_stats = Offline.Opt_cache.stats () in
  (* --- jobs=1 vs jobs=2: engine cost / flow OPT per seed ------------ *)
  let sweep_seeds = if quick then 4 else 8 in
  let sweep_t = if quick then 12 else 30 in
  let sweep () =
    Exec.map
      (fun seed ->
        let inst = gen ~t:sweep_t seed in
        let packed = MS.Instance.pack inst in
        let cost =
          Multi.Fleet_engine.total_cost_packed ~k:16 config
            Multi.Fleet_mtc.independent_packed packed
        in
        let opt = Multi.Fleet_offline.optimum_flow ~k:16 config inst in
        cost /. opt)
      (Array.init sweep_seeds (fun i -> 500 + i))
  in
  let saved_jobs = Exec.jobs () in
  Exec.set_jobs 1;
  Offline.Opt_cache.clear ();
  let j1_s, sweep_j1 = timed sweep in
  Exec.set_jobs 2;
  Offline.Opt_cache.clear ();
  let j2_s, sweep_j2 = timed sweep in
  Exec.set_jobs saved_jobs;
  let identity_jobs1_vs_jobs2 = all_bit_eq sweep_j1 sweep_j2 in
  (* --- render ------------------------------------------------------- *)
  Tables.print
    ~title:
      (Printf.sprintf "fleet engine rounds, T=%d (ms; lower is better)"
         engine_t)
    (Tables.create
       ~aligns:
         [ Tables.Right; Tables.Right; Tables.Right; Tables.Right;
           Tables.Left ]
       ~header:[ "k"; "boxed"; "packed"; "speedup"; "identical" ]
       (List.map
          (fun (k, b, p, s, ok) ->
            [ string_of_int k; Tables.cell b; Tables.cell p; Tables.cell s;
              string_of_bool ok ])
          engine_rows));
  Tables.print ~title:"flow OPT of the serve-assignment relaxation"
    (Tables.create
       ~aligns:[ Tables.Right; Tables.Right; Tables.Right; Tables.Right ]
       ~header:[ "k"; "requests"; "solve (ms)"; "OPT" ]
       (List.map
          (fun (k, n, ms, opt) ->
            [ string_of_int k; string_of_int n; Tables.cell ms;
              Tables.cell opt ])
          flow_rows));
  Tables.print ~title:"flow vs brute-force enumeration"
    (Tables.create
       ~aligns:
         [ Tables.Right; Tables.Right; Tables.Right; Tables.Right;
           Tables.Right; Tables.Left ]
       ~header:
         [ "k"; "requests"; "brute (ms)"; "flow (ms)"; "speedup";
           "identical" ]
       (List.map
          (fun (k, n, bms, fms, s, ok) ->
            [ string_of_int k; string_of_int n; Tables.cell bms;
              Tables.cell fms; Tables.cell s; string_of_bool ok ])
          brute_rows));
  Printf.printf "cache stats                    : %d hits, %d misses\n"
    cache_stats.Offline.Opt_cache.hits cache_stats.Offline.Opt_cache.misses;
  Printf.printf "flow cold %.1fms, warm %.1fms (speedup %.1fx)\n"
    (cold_s *. 1e3) (warm_s *. 1e3) (cold_s /. warm_s);
  Printf.printf "sweep jobs=1 %.2fs, jobs=2 %.2fs\n" j1_s j2_s;
  Printf.printf "packed engine = boxed engine   : %b\n" identity_packed_vs_boxed;
  Printf.printf "flow OPT = brute OPT           : %b\n" identity_flow_vs_brute;
  Printf.printf "cached = cold = bypassed       : %b\n"
    identity_cached_vs_uncached;
  Printf.printf "jobs1 = jobs2                  : %b\n%!"
    identity_jobs1_vs_jobs2;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"msp-bench-fleet-v1\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Printf.sprintf "  \"engine_rounds\": %d,\n" engine_t);
  Buffer.add_string buf "  \"engine\": [\n";
  List.iteri
    (fun i (k, b, p, s, ok) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"k\": %d, \"boxed_ms\": %.6g, \"packed_ms\": %.6g, \
            \"speedup\": %.6g, \"identical\": %b}%s\n"
           k b p s ok
           (if i < List.length engine_rows - 1 then "," else "")))
    engine_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"flow\": [\n";
  List.iteri
    (fun i (k, n, ms, opt) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"k\": %d, \"requests\": %d, \"solve_ms\": %.6g, \
            \"opt\": %.6g}%s\n"
           k n ms opt
           (if i < List.length flow_rows - 1 then "," else "")))
    flow_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"brute\": [\n";
  List.iteri
    (fun i (k, n, bms, fms, s, ok) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"k\": %d, \"requests\": %d, \"brute_ms\": %.6g, \
            \"flow_ms\": %.6g, \"speedup\": %.6g, \"identical\": %b}%s\n"
           k n bms fms s ok
           (if i < List.length brute_rows - 1 then "," else "")))
    brute_rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"flow_cold_ms\": %.6g,\n" (cold_s *. 1e3));
  Buffer.add_string buf
    (Printf.sprintf "  \"flow_warm_ms\": %.6g,\n" (warm_s *. 1e3));
  Buffer.add_string buf
    (Printf.sprintf "  \"cache_warm_speedup\": %.6g,\n" (cold_s /. warm_s));
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_seeds\": %d,\n" sweep_seeds);
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_jobs1_s\": %.6g,\n" j1_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"sweep_jobs2_s\": %.6g,\n" j2_s);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_packed_vs_boxed\": %b,\n"
       identity_packed_vs_boxed);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_flow_vs_brute\": %b,\n"
       identity_flow_vs_brute);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_cached_vs_uncached\": %b,\n"
       identity_cached_vs_uncached);
  Buffer.add_string buf
    (Printf.sprintf "  \"identity_jobs1_vs_jobs2\": %b\n"
       identity_jobs1_vs_jobs2);
  Buffer.add_string buf "}\n";
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "fleet report written to %s\n" out;
  if not (identity_packed_vs_boxed && identity_flow_vs_brute
          && identity_cached_vs_uncached && identity_jobs1_vs_jobs2)
  then begin
    prerr_endline
      "FATAL: fleet rewrite or flow solver is not byte-identical to its \
       replicas";
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* Optional: --markdown <path> writes the whole report as Markdown. *)
  let markdown_path = ref None in
  let parallel_out = ref "BENCH_parallel.json" in
  let hotpath_out = ref "BENCH_hotpath.json" in
  let solver_out = ref "BENCH_solver.json" in
  let network_out = ref "BENCH_network.json" in
  let serve_out = ref "BENCH_serve.json" in
  let multicore_out = ref "BENCH_multicore.json" in
  let fleet_out = ref "BENCH_fleet.json" in
  let golden_path = ref Experiments.Golden.golden_path in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest -> strip rest
    | "--markdown" :: path :: rest ->
      markdown_path := Some path;
      strip rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> Exec.set_jobs j
       | Some _ | None ->
         prerr_endline "bench: --jobs expects a positive integer";
         exit 2);
      strip rest
    | "--parallel-out" :: path :: rest ->
      parallel_out := path;
      strip rest
    | "--hotpath-out" :: path :: rest ->
      hotpath_out := path;
      strip rest
    | "--solver-out" :: path :: rest ->
      solver_out := path;
      strip rest
    | "--network-out" :: path :: rest ->
      network_out := path;
      strip rest
    | "--serve-out" :: path :: rest ->
      serve_out := path;
      strip rest
    | "--multicore-out" :: path :: rest ->
      multicore_out := path;
      strip rest
    | "--fleet-out" :: path :: rest ->
      fleet_out := path;
      strip rest
    | "--golden" :: path :: rest ->
      golden_path := path;
      strip rest
    | arg :: rest -> arg :: strip rest
  in
  let args = strip args in
  let wanted = if args = [] then Experiments.Catalog.ids @ [ "micro" ] else args in
  let t0 = Unix.gettimeofday () in
  let results = ref [] in
  List.iter
    (fun id ->
      let started = Unix.gettimeofday () in
      (match id with
       | "micro" -> run_micro ()
       | "parallel" ->
         run_parallel ~quick ~jobs:(Exec.jobs ()) ~out:!parallel_out ()
       | "hotpath" ->
         run_hotpath ~quick ~out:!hotpath_out ~golden:!golden_path ()
       | "solver" -> run_solver ~quick ~out:!solver_out ()
       | "network" -> run_network ~quick ~out:!network_out ()
       | "serve" -> run_serve ~quick ~out:!serve_out ()
       | "multicore" -> run_multicore ~quick ~out:!multicore_out ()
       | "fleet" -> run_fleet ~quick ~out:!fleet_out ()
       | id ->
         let result = Experiments.Catalog.run ~quick id in
         Experiments.Catalog.print_result result;
         results := result :: !results);
      Printf.printf "[%s finished in %.1fs]\n%!" id
        (Unix.gettimeofday () -. started))
    wanted;
  (match !markdown_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc
           (Experiments.Catalog.report_markdown (List.rev !results)));
     Printf.printf "markdown report written to %s\n" path);
  Printf.printf "\nAll done in %.1fs.\n" (Unix.gettimeofday () -. t0)
